package onnxsize

import (
	"bytes"
	"testing"

	"drainnas/internal/resnet"
	"drainnas/internal/tensor"
)

// fuzzSeedConfig is deliberately the smallest legal network so the seed
// container stays a few kilobytes and mutation coverage is dense.
func fuzzSeedConfig() resnet.Config {
	return resnet.Config{
		Channels: 1, Batch: 1, KernelSize: 3, Stride: 2, Padding: 1,
		PoolChoice: 0, InitialOutputFeature: 2, NumClasses: 2,
	}
}

// FuzzDecode feeds arbitrary byte streams to the container decoder. The
// contract under test: malformed, truncated or hostile input returns an
// error — it never panics, and whenever Decode accepts input the decoded
// weights are self-consistent with the declared initializer dims.
func FuzzDecode(f *testing.F) {
	g, err := BuildGraphSpec(fuzzSeedConfig())
	if err != nil {
		f.Fatal(err)
	}
	var structural bytes.Buffer
	if _, err := Encode(g, &structural); err != nil {
		f.Fatal(err)
	}
	m, err := resnet.New(fuzzSeedConfig(), tensor.NewRNG(3))
	if err != nil {
		f.Fatal(err)
	}
	var trained bytes.Buffer
	if _, err := Export(m, &trained); err != nil {
		f.Fatal(err)
	}

	valid := trained.Bytes()
	f.Add(valid)
	f.Add(structural.Bytes())
	f.Add([]byte{})
	f.Add([]byte(magic))
	f.Add(valid[:len(valid)/2])
	f.Add(valid[:len(magic)+1])
	flipped := append([]byte{}, valid...)
	flipped[len(magic)+3] ^= 0xff
	f.Add(flipped)
	// Huge-varint initializer dims were the historical overflow panic: a
	// dim product wrapping past MaxInt made make() blow up.
	f.Add(append(append([]byte{}, magic...), 0x01, 'g', 0x00, 0x01, 0x01, 'w',
		0x02, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0x7f, 0x04))

	f.Fuzz(func(t *testing.T, data []byte) {
		dec, err := Decode(bytes.NewReader(data))
		if err != nil {
			return
		}
		if dec == nil {
			t.Fatal("nil Decoded without error")
		}
		for _, init := range dec.Graph.Initializers {
			vals, ok := dec.Weights[init.Name]
			if !ok {
				t.Fatalf("initializer %q decoded without weights", init.Name)
			}
			if len(vals) != init.Numel() {
				t.Fatalf("initializer %q: %d values, dims %v imply %d",
					init.Name, len(vals), init.Dims, init.Numel())
			}
		}
	})
}

// FuzzDecodeRoundTrip checks the stronger property on accepted input:
// whatever Decode accepts can be re-encoded and decoded again to the same
// graph and weights. (Byte-identity is not guaranteed — varints have
// non-minimal encodings — but semantic identity is.)
func FuzzDecodeRoundTrip(f *testing.F) {
	g, err := BuildGraphSpec(fuzzSeedConfig())
	if err != nil {
		f.Fatal(err)
	}
	var buf bytes.Buffer
	if _, err := Encode(g, &buf); err != nil {
		f.Fatal(err)
	}
	f.Add(buf.Bytes())
	f.Fuzz(func(t *testing.T, data []byte) {
		dec, err := Decode(bytes.NewReader(data))
		if err != nil {
			return
		}
		var re bytes.Buffer
		if _, err := encode(dec.Graph, &re, dec.Weights); err != nil {
			t.Fatalf("re-encode of accepted container failed: %v", err)
		}
		dec2, err := Decode(bytes.NewReader(re.Bytes()))
		if err != nil {
			t.Fatalf("re-decode of re-encoded container failed: %v", err)
		}
		if dec2.Graph.Name != dec.Graph.Name ||
			len(dec2.Graph.Nodes) != len(dec.Graph.Nodes) ||
			len(dec2.Graph.Initializers) != len(dec.Graph.Initializers) {
			t.Fatalf("round trip changed graph structure")
		}
		for name, vals := range dec.Weights {
			got := dec2.Weights[name]
			if len(got) != len(vals) {
				t.Fatalf("weights %q: %d values after round trip, want %d", name, len(got), len(vals))
			}
		}
	})
}
