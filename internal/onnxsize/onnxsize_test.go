package onnxsize

import (
	"bytes"
	"math"
	"testing"
	"testing/quick"

	"drainnas/internal/resnet"
	"drainnas/internal/tensor"
)

func narrowConfig() resnet.Config {
	return resnet.Config{Channels: 5, Batch: 8, KernelSize: 3, Stride: 2, Padding: 1,
		PoolChoice: 0, InitialOutputFeature: 32, NumClasses: 2}
}

func TestStockMemoryMatchesTable5(t *testing.T) {
	// Paper Table 5: 44.71 MB for 5-channel, 44.73 MB for 7-channel stock
	// ResNet-18. The export includes BN running stats and graph metadata,
	// so we allow a small band around the paper's values.
	mb5, err := SizeMB(resnet.StockResNet18(5, 8))
	if err != nil {
		t.Fatal(err)
	}
	if mb5 < 44.0 || mb5 > 45.5 {
		t.Fatalf("stock 5ch memory %.2f MB, want ≈44.71", mb5)
	}
	mb7, _ := SizeMB(resnet.StockResNet18(7, 8))
	if mb7 <= mb5 {
		t.Fatal("7ch model must be larger than 5ch")
	}
	if mb7-mb5 > 0.1 {
		t.Fatalf("channel delta %.3f MB, want ≈0.02", mb7-mb5)
	}
}

func TestNarrowMemoryMatchesTable4(t *testing.T) {
	// Paper Table 4: all five non-dominated models store at 11.18 MB.
	mb, err := SizeMB(narrowConfig())
	if err != nil {
		t.Fatal(err)
	}
	if mb < 11.0 || mb > 11.6 {
		t.Fatalf("narrow model memory %.2f MB, want ≈11.18", mb)
	}
}

func TestParamCountAgreesWithBuiltModel(t *testing.T) {
	for _, cfg := range []resnet.Config{
		resnet.StockResNet18(5, 8),
		resnet.StockResNet18(7, 16),
		narrowConfig(),
	} {
		analytic, err := ParamCount(cfg)
		if err != nil {
			t.Fatal(err)
		}
		m, err := resnet.New(cfg, tensor.NewRNG(1))
		if err != nil {
			t.Fatal(err)
		}
		if analytic != m.NumParams() {
			t.Fatalf("cfg %s: analytic %d != built %d", cfg.Key(), analytic, m.NumParams())
		}
	}
}

func TestEncodeSizeMatchesSizeBytes(t *testing.T) {
	cfg := narrowConfig()
	g, err := BuildGraphSpec(cfg)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	n, err := Encode(g, &buf)
	if err != nil {
		t.Fatal(err)
	}
	if int64(buf.Len()) != n {
		t.Fatalf("reported %d bytes, wrote %d", n, buf.Len())
	}
	sz, _ := SizeBytes(cfg)
	if sz != n {
		t.Fatalf("SizeBytes %d != Encode %d", sz, n)
	}
}

func TestExportSameSizeAsEncodeButDifferentBytes(t *testing.T) {
	cfg := narrowConfig()
	cfg.InitialOutputFeature = 32
	m, err := resnet.New(cfg, tensor.NewRNG(3))
	if err != nil {
		t.Fatal(err)
	}
	var trained bytes.Buffer
	n1, err := Export(m, &trained)
	if err != nil {
		t.Fatal(err)
	}
	sz, _ := SizeBytes(cfg)
	if n1 != sz {
		t.Fatalf("Export size %d != SizeBytes %d", n1, sz)
	}
	// Trained export must contain non-zero weight bytes.
	zero := true
	for _, b := range trained.Bytes()[trained.Len()/2:] {
		if b != 0 {
			zero = false
			break
		}
	}
	if zero {
		t.Fatal("Export payload looks all-zero")
	}
}

func TestPoolNodeAddsBytesButNoParams(t *testing.T) {
	noPool := narrowConfig()
	withPool := noPool
	withPool.PoolChoice = 1
	withPool.KernelSizePool = 3
	withPool.StridePool = 2
	a, _ := SizeBytes(noPool)
	b, _ := SizeBytes(withPool)
	if b <= a {
		t.Fatal("MaxPool node must add graph bytes")
	}
	if b-a > 200 {
		t.Fatalf("MaxPool node added %d bytes — should be metadata only", b-a)
	}
	pa, _ := ParamCount(noPool)
	pb, _ := ParamCount(withPool)
	if pa != pb {
		t.Fatal("pooling must not change the parameter count")
	}
}

func TestMemoryMonotoneInWidth(t *testing.T) {
	prev := 0.0
	for _, f := range []int{32, 48, 64} {
		cfg := narrowConfig()
		cfg.InitialOutputFeature = f
		mb, err := SizeMB(cfg)
		if err != nil {
			t.Fatal(err)
		}
		if mb <= prev {
			t.Fatalf("memory not monotone in width at f=%d: %.2f <= %.2f", f, mb, prev)
		}
		prev = mb
	}
}

func TestMemoryIndependentOfBatchAndStride(t *testing.T) {
	// Batch size and stem stride change no parameters — ONNX size must not
	// move (stride is a node attribute; attribute value encoding is
	// varint-stable for the 1..3 range used here).
	a := narrowConfig()
	b := a
	b.Batch = 32
	sa, _ := SizeBytes(a)
	sb, _ := SizeBytes(b)
	if sa != sb {
		t.Fatal("batch size changed serialized size")
	}
	c := a
	c.Stride = 1
	sc, _ := SizeBytes(c)
	if sa != sc {
		t.Fatal("stride changed serialized size")
	}
}

func TestKernelSizeChangesMemory(t *testing.T) {
	a := narrowConfig()
	b := a
	b.KernelSize = 7
	b.Padding = 3
	sa, _ := SizeMB(a)
	sb, _ := SizeMB(b)
	if sb <= sa {
		t.Fatal("7x7 stem must enlarge the export")
	}
}

func TestBuildGraphSpecRejectsInvalid(t *testing.T) {
	if _, err := BuildGraphSpec(resnet.Config{}); err == nil {
		t.Fatal("expected validation error")
	}
}

func TestGraphSpecNodeInventory(t *testing.T) {
	g, _ := BuildGraphSpec(resnet.StockResNet18(5, 8))
	counts := map[string]int{}
	for _, n := range g.Nodes {
		counts[n.OpType]++
	}
	// 17 convs (stem + 16 block convs) + 3 downsample = 20 Conv nodes.
	if counts["Conv"] != 20 {
		t.Fatalf("Conv nodes %d, want 20", counts["Conv"])
	}
	if counts["BatchNormalization"] != 20 {
		t.Fatalf("BN nodes %d, want 20", counts["BatchNormalization"])
	}
	if counts["MaxPool"] != 1 || counts["Gemm"] != 1 || counts["GlobalAveragePool"] != 1 {
		t.Fatalf("structural nodes: %v", counts)
	}
	if counts["Add"] != 8 {
		t.Fatalf("Add nodes %d, want 8", counts["Add"])
	}
}

func TestSizePropertyDominatedByParams(t *testing.T) {
	// Property: serialized size ≈ 4 bytes/param + 8 bytes/BN channel
	// (running stats) + bounded metadata.
	f := func(sel uint8) bool {
		cfg := narrowConfig()
		cfg.InitialOutputFeature = []int{32, 48, 64}[sel%3]
		params, err := ParamCount(cfg)
		if err != nil {
			return false
		}
		sz, err := SizeBytes(cfg)
		if err != nil {
			return false
		}
		lower := int64(params * 4)
		upper := lower + int64(params) + 20000 // stats + metadata slack
		return sz > lower && sz < upper
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 9}); err != nil {
		t.Fatal(err)
	}
}

func TestSizeMBUnits(t *testing.T) {
	cfg := narrowConfig()
	b, _ := SizeBytes(cfg)
	mb, _ := SizeMB(cfg)
	if math.Abs(mb-float64(b)/1e6) > 1e-12 {
		t.Fatal("SizeMB must be bytes/1e6")
	}
}
