package geodata

import (
	"fmt"
	"math"
	"sort"
)

// Terrain is a square digital elevation model with helper fields produced
// during synthesis: per-cell flow accumulation and masks marking carved
// channels, road embankments and crossing structures.
type Terrain struct {
	Size int
	// Elev holds elevations in meters, row-major.
	Elev []float64
	// FlowAcc holds D8 flow accumulation (number of upstream cells), filled
	// by FlowAccumulation.
	FlowAcc []float64
	// ChannelMask / RoadMask / CrossingMask are in [0, 1] membership weights.
	ChannelMask  []float64
	RoadMask     []float64
	CrossingMask []float64
}

// NewTerrain allocates a terrain of the given size.
func NewTerrain(size int) *Terrain {
	if size <= 0 {
		panic(fmt.Sprintf("geodata: invalid terrain size %d", size))
	}
	n := size * size
	return &Terrain{
		Size:         size,
		Elev:         make([]float64, n),
		FlowAcc:      make([]float64, n),
		ChannelMask:  make([]float64, n),
		RoadMask:     make([]float64, n),
		CrossingMask: make([]float64, n),
	}
}

// d8Offsets enumerates the eight neighbors with their distances.
var d8Offsets = [8]struct {
	dx, dy int
	dist   float64
}{
	{1, 0, 1}, {-1, 0, 1}, {0, 1, 1}, {0, -1, 1},
	{1, 1, math.Sqrt2}, {1, -1, math.Sqrt2}, {-1, 1, math.Sqrt2}, {-1, -1, math.Sqrt2},
}

// FlowAccumulation computes D8 flow accumulation: each cell drains to its
// steepest-descent neighbor, and accumulation counts the number of cells
// (including itself) draining through each cell. Cells are processed in
// descending elevation order, which makes the single pass exact on a DAG.
func (t *Terrain) FlowAccumulation() {
	size := t.Size
	n := size * size
	order := make([]int, n)
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(a, b int) bool { return t.Elev[order[a]] > t.Elev[order[b]] })

	for i := range t.FlowAcc {
		t.FlowAcc[i] = 1
	}
	for _, idx := range order {
		x, y := idx%size, idx/size
		bestSlope := 0.0
		best := -1
		for _, o := range d8Offsets {
			nx, ny := x+o.dx, y+o.dy
			if nx < 0 || nx >= size || ny < 0 || ny >= size {
				continue
			}
			nIdx := ny*size + nx
			slope := (t.Elev[idx] - t.Elev[nIdx]) / o.dist
			if slope > bestSlope {
				bestSlope = slope
				best = nIdx
			}
		}
		if best >= 0 {
			t.FlowAcc[best] += t.FlowAcc[idx]
		}
	}
}

// ChannelCells returns the indices whose flow accumulation meets the
// threshold — the extracted drainage network of the DEM.
func (t *Terrain) ChannelCells(threshold float64) []int {
	var cells []int
	for i, a := range t.FlowAcc {
		if a >= threshold {
			cells = append(cells, i)
		}
	}
	return cells
}

// polyline is a sequence of continuous points tracing a channel or road.
type polyline []struct{ X, Y float64 }

// distanceToSegment returns the Euclidean distance from p to segment ab.
func distanceToSegment(px, py, ax, ay, bx, by float64) float64 {
	dx, dy := bx-ax, by-ay
	l2 := dx*dx + dy*dy
	if l2 == 0 {
		return math.Hypot(px-ax, py-ay)
	}
	tp := ((px-ax)*dx + (py-ay)*dy) / l2
	tp = clamp01(tp)
	cx, cy := ax+tp*dx, ay+tp*dy
	return math.Hypot(px-cx, py-cy)
}

// distanceField computes, for every cell, the distance to the nearest
// segment of the polyline. For the small chips used here an exact sweep is
// cheap and simpler than a jump-flood approximation.
func (t *Terrain) distanceField(line polyline) []float64 {
	size := t.Size
	out := make([]float64, size*size)
	for y := 0; y < size; y++ {
		for x := 0; x < size; x++ {
			best := math.Inf(1)
			px, py := float64(x), float64(y)
			for s := 0; s+1 < len(line); s++ {
				d := distanceToSegment(px, py, line[s].X, line[s].Y, line[s+1].X, line[s+1].Y)
				if d < best {
					best = d
				}
			}
			out[y*size+x] = best
		}
	}
	return out
}

// CarveChannel lowers the DEM along the polyline with a Gaussian
// cross-section of the given width (σ, cells) and depth (meters), and adds
// the membership weight to ChannelMask.
func (t *Terrain) CarveChannel(line polyline, width, depth float64) {
	dist := t.distanceField(line)
	for i, d := range dist {
		w := gaussian(d, width)
		if w < 1e-4 {
			continue
		}
		t.Elev[i] -= depth * w
		t.ChannelMask[i] = math.Max(t.ChannelMask[i], w)
	}
}

// RaiseRoad lifts the DEM along the polyline to form an embankment with a
// flat crown: full height within crownWidth, Gaussian shoulders beyond.
func (t *Terrain) RaiseRoad(line polyline, crownWidth, shoulderWidth, height float64) {
	dist := t.distanceField(line)
	for i, d := range dist {
		var w float64
		if d <= crownWidth {
			w = 1
		} else {
			w = gaussian(d-crownWidth, shoulderWidth)
		}
		if w < 1e-4 {
			continue
		}
		t.Elev[i] += height * w
		t.RoadMask[i] = math.Max(t.RoadMask[i], w)
	}
}

// StampCrossing records a culvert-style drainage crossing at (cx, cy): the
// embankment locally sags and the channel depression persists through it,
// producing the DEM signature the classifier must learn. radius is in cells.
func (t *Terrain) StampCrossing(cx, cy, radius, sag float64) {
	size := t.Size
	x0 := int(math.Max(0, cx-3*radius))
	x1 := int(math.Min(float64(size-1), cx+3*radius))
	y0 := int(math.Max(0, cy-3*radius))
	y1 := int(math.Min(float64(size-1), cy+3*radius))
	for y := y0; y <= y1; y++ {
		for x := x0; x <= x1; x++ {
			d := math.Hypot(float64(x)-cx, float64(y)-cy)
			w := gaussian(d, radius)
			if w < 1e-4 {
				continue
			}
			i := y*size + x
			t.Elev[i] -= sag * w
			t.CrossingMask[i] = math.Max(t.CrossingMask[i], w)
		}
	}
}

// ElevRange returns the minimum and maximum elevation.
func (t *Terrain) ElevRange() (lo, hi float64) {
	lo, hi = math.Inf(1), math.Inf(-1)
	for _, e := range t.Elev {
		if e < lo {
			lo = e
		}
		if e > hi {
			hi = e
		}
	}
	return lo, hi
}
