package geodata

import (
	"math"

	"drainnas/internal/tensor"
)

// SceneKind enumerates the layouts a chip can have. Positive chips always
// contain a crossing; negative chips are drawn from the three non-crossing
// layouts so the classifier cannot shortcut on "any road" or "any channel".
type SceneKind int

// The scene layouts.
const (
	SceneCrossing    SceneKind = iota // channel + road intersecting (label 1)
	SceneChannelOnly                  // channel, no road
	SceneRoadOnly                     // road, no channel
	SceneParallel                     // channel and road present but disjoint
)

// Chip is one training sample: a 7-band raster in band order
// [DEM, R, G, B, NIR, NDVI, NDWI] plus its label and provenance.
type Chip struct {
	Region string
	Label  int // 1 = contains a drainage crossing
	Size   int
	// Bands is length 7*Size*Size, band-major.
	Bands []float32
}

// NumBands is the full channel count of a chip.
const NumBands = 7

// Band indices into Chip.Bands.
const (
	BandDEM = iota
	BandRed
	BandGreen
	BandBlue
	BandNIR
	BandNDVI
	BandNDWI
)

// BandNames lists the chip band order.
var BandNames = [NumBands]string{"DEM", "RED", "GREEN", "BLUE", "NIR", "NDVI", "NDWI"}

// meander builds a roughly vertical polyline through the chip whose
// horizontal position wanders randomly, pinned to pass through
// (crossX, crossY) when pin is true.
func meander(rng *tensor.RNG, size int, crossX, crossY float64, pin bool) polyline {
	const steps = 8
	line := make(polyline, 0, steps+1)
	x := rng.Uniform(0.25, 0.75) * float64(size)
	if pin {
		x = crossX + jitter(rng, float64(size)*0.05)
	}
	for i := 0; i <= steps; i++ {
		y := float64(i) / steps * float64(size-1)
		wander := jitter(rng, float64(size)*0.08)
		px := x + wander
		if pin {
			// Pull the channel through the crossing point near its row.
			pull := gaussian(y-crossY, float64(size)*0.15)
			px = px*(1-pull) + crossX*pull
		}
		line = append(line, struct{ X, Y float64 }{clampF(px, 1, float64(size-2)), y})
	}
	return line
}

// straightRoad builds a near-horizontal road polyline through (crossX,
// crossY) when pin is true, otherwise through a random row.
func straightRoad(rng *tensor.RNG, size int, crossX, crossY float64, pin bool) polyline {
	y := rng.Uniform(0.25, 0.75) * float64(size)
	if pin {
		y = crossY
	}
	slope := jitter(rng, 0.25)
	y0 := y - slope*float64(size)/2
	y1 := y + slope*float64(size)/2
	if pin {
		// Keep the road passing through the pinned point exactly.
		y0 = crossY - slope*crossX
		y1 = crossY + slope*(float64(size-1)-crossX)
	}
	return polyline{
		{X: 0, Y: clampF(y0, 1, float64(size-2))},
		{X: float64(size - 1), Y: clampF(y1, 1, float64(size-2))},
	}
}

func clampF(v, lo, hi float64) float64 {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}

// BuildScene synthesizes a terrain of the given kind for a region. The
// returned terrain has elevation, masks and (for statistics) no flow
// accumulation computed; callers that need the drainage network can invoke
// FlowAccumulation themselves.
func BuildScene(region Region, kind SceneKind, size int, rng *tensor.RNG) *Terrain {
	t := NewTerrain(size)
	// Fractal base with a gentle regional gradient so water has somewhere
	// to flow.
	base := FractalField(rng.Uint64(), size, 3.0, 5, region.Roughness)
	gx := jitter(rng, 1)
	gy := jitter(rng, 1)
	for y := 0; y < size; y++ {
		for x := 0; x < size; x++ {
			g := (gx*float64(x) + gy*float64(y)) / float64(size)
			t.Elev[y*size+x] = region.Relief * (base[y*size+x] + 0.3*g)
		}
	}

	crossX := float64(size)/2 + jitter(rng, float64(size)*0.12)
	crossY := float64(size)/2 + jitter(rng, float64(size)*0.12)
	chanWidth := rng.Uniform(1.2, 2.5)
	chanDepth := region.Relief * rng.Uniform(0.25, 0.5)
	roadCrown := rng.Uniform(1.5, 2.5)
	roadShoulder := rng.Uniform(1.5, 3)
	roadHeight := region.Relief * rng.Uniform(0.15, 0.3)

	switch kind {
	case SceneCrossing:
		t.CarveChannel(meander(rng, size, crossX, crossY, true), chanWidth, chanDepth)
		t.RaiseRoad(straightRoad(rng, size, crossX, crossY, true), roadCrown, roadShoulder, roadHeight)
		t.StampCrossing(crossX, crossY, rng.Uniform(2, 3.5), chanDepth*0.8)
	case SceneChannelOnly:
		t.CarveChannel(meander(rng, size, 0, 0, false), chanWidth, chanDepth)
	case SceneRoadOnly:
		t.RaiseRoad(straightRoad(rng, size, 0, 0, false), roadCrown, roadShoulder, roadHeight)
	case SceneParallel:
		// Channel down the left third, road across the bottom quarter —
		// both features present, geometrically disjoint.
		chanX := rng.Uniform(0.12, 0.3) * float64(size)
		roadY := rng.Uniform(0.72, 0.88) * float64(size)
		line := meander(rng, size, chanX, float64(size)*0.2, true)
		// Truncate the channel before it reaches the road's row.
		var clipped polyline
		for _, p := range line {
			if p.Y < roadY-6 {
				clipped = append(clipped, p)
			}
		}
		if len(clipped) < 2 {
			clipped = line[:2]
		}
		t.CarveChannel(clipped, chanWidth, chanDepth)
		t.RaiseRoad(polyline{
			{X: 0, Y: roadY}, {X: float64(size - 1), Y: roadY},
		}, roadCrown, roadShoulder, roadHeight)
	}
	return t
}

// negativeKind picks a non-crossing layout, weighted so that hard negatives
// (both features present, disjoint) appear often enough to prevent shortcut
// learning.
func negativeKind(rng *tensor.RNG) SceneKind {
	switch rng.Intn(3) {
	case 0:
		return SceneChannelOnly
	case 1:
		return SceneRoadOnly
	default:
		return SceneParallel
	}
}

// GenerateChip synthesizes one labeled chip for a region.
func GenerateChip(region Region, label, size int, rng *tensor.RNG) Chip {
	kind := SceneCrossing
	if label == 0 {
		kind = negativeKind(rng)
	}
	t := BuildScene(region, kind, size, rng)
	bands := RenderBands(t, region, rng)
	return Chip{Region: region.Name, Label: label, Size: size, Bands: bands}
}

// Band returns one band of the chip as a flat Size×Size slice (a view, not
// a copy).
func (c Chip) Band(b int) []float32 {
	n := c.Size * c.Size
	return c.Bands[b*n : (b+1)*n]
}

// Stats summarizes a band with mean and standard deviation.
func (c Chip) Stats(b int) (mean, std float64) {
	band := c.Band(b)
	if len(band) == 0 {
		return 0, 0
	}
	sum := 0.0
	for _, v := range band {
		sum += float64(v)
	}
	mean = sum / float64(len(band))
	ss := 0.0
	for _, v := range band {
		d := float64(v) - mean
		ss += d * d
	}
	std = math.Sqrt(ss / float64(len(band)))
	return mean, std
}
