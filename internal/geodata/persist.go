package geodata

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"math"
)

// Corpus persistence: synthesizing the full 12,068-chip corpus takes
// minutes, so the generated chips can be cached to disk in a compact
// binary container and reloaded instantly for subsequent training runs.

const corpusMagic = "DNCH\x01"

// SaveCorpus writes the corpus to w.
func (c *Corpus) SaveCorpus(w io.Writer) error {
	bw := bufio.NewWriter(w)
	if _, err := bw.WriteString(corpusMagic); err != nil {
		return fmt.Errorf("geodata: %w", err)
	}
	var hdr [8]byte
	binary.LittleEndian.PutUint32(hdr[0:], uint32(c.ChipSize))
	binary.LittleEndian.PutUint32(hdr[4:], uint32(len(c.Chips)))
	if _, err := bw.Write(hdr[:]); err != nil {
		return fmt.Errorf("geodata: %w", err)
	}
	var u32 [4]byte
	for _, chip := range c.Chips {
		if chip.Size != c.ChipSize {
			return fmt.Errorf("geodata: chip size %d differs from corpus %d", chip.Size, c.ChipSize)
		}
		if len(chip.Region) > 255 {
			return fmt.Errorf("geodata: region name too long")
		}
		if err := bw.WriteByte(byte(len(chip.Region))); err != nil {
			return fmt.Errorf("geodata: %w", err)
		}
		if _, err := bw.WriteString(chip.Region); err != nil {
			return fmt.Errorf("geodata: %w", err)
		}
		if err := bw.WriteByte(byte(chip.Label)); err != nil {
			return fmt.Errorf("geodata: %w", err)
		}
		for _, v := range chip.Bands {
			binary.LittleEndian.PutUint32(u32[:], math.Float32bits(v))
			if _, err := bw.Write(u32[:]); err != nil {
				return fmt.Errorf("geodata: %w", err)
			}
		}
	}
	return bw.Flush()
}

// LoadCorpus reads a corpus written by SaveCorpus.
func LoadCorpus(r io.Reader) (*Corpus, error) {
	br := bufio.NewReader(r)
	head := make([]byte, len(corpusMagic))
	if _, err := io.ReadFull(br, head); err != nil {
		return nil, fmt.Errorf("geodata: reading magic: %w", err)
	}
	if string(head) != corpusMagic {
		return nil, fmt.Errorf("geodata: bad corpus magic %q", head)
	}
	var hdr [8]byte
	if _, err := io.ReadFull(br, hdr[:]); err != nil {
		return nil, fmt.Errorf("geodata: reading header: %w", err)
	}
	chipSize := int(binary.LittleEndian.Uint32(hdr[0:]))
	count := int(binary.LittleEndian.Uint32(hdr[4:]))
	if chipSize <= 0 || chipSize > 4096 {
		return nil, fmt.Errorf("geodata: implausible chip size %d", chipSize)
	}
	if count < 0 || count > 1<<22 {
		return nil, fmt.Errorf("geodata: implausible chip count %d", count)
	}
	corpus := &Corpus{ChipSize: chipSize, Chips: make([]Chip, 0, count)}
	bandLen := NumBands * chipSize * chipSize
	raw := make([]byte, bandLen*4)
	for i := 0; i < count; i++ {
		nameLen, err := br.ReadByte()
		if err != nil {
			return nil, fmt.Errorf("geodata: chip %d region length: %w", i, err)
		}
		name := make([]byte, nameLen)
		if _, err := io.ReadFull(br, name); err != nil {
			return nil, fmt.Errorf("geodata: chip %d region: %w", i, err)
		}
		label, err := br.ReadByte()
		if err != nil {
			return nil, fmt.Errorf("geodata: chip %d label: %w", i, err)
		}
		if label > 1 {
			return nil, fmt.Errorf("geodata: chip %d label %d out of range", i, label)
		}
		if _, err := io.ReadFull(br, raw); err != nil {
			return nil, fmt.Errorf("geodata: chip %d bands: %w", i, err)
		}
		bands := make([]float32, bandLen)
		for j := range bands {
			bands[j] = math.Float32frombits(binary.LittleEndian.Uint32(raw[j*4:]))
		}
		corpus.Chips = append(corpus.Chips, Chip{
			Region: string(name), Label: int(label), Size: chipSize, Bands: bands,
		})
	}
	if _, err := br.ReadByte(); err != io.EOF {
		return nil, fmt.Errorf("geodata: trailing data after corpus")
	}
	return corpus, nil
}
