package geodata

import (
	"fmt"

	"drainnas/internal/tensor"
)

// GenerateWatershed synthesizes a size×size watershed tile for whole-region
// scanning, deriving everything from (region, size, seed): the RNG is seeded
// from seed alone and the channel/road counts scale with the raster side so
// a larger watershed carries proportionally more hydrography. Two calls with
// equal arguments produce byte-identical bands and identical crossing lists,
// which is what makes scan heat maps reproducible.
func GenerateWatershed(region Region, size int, seed uint64) *Tile {
	rng := tensor.NewRNG(seed ^ 0xA24BAED4963EE407)
	n := 2 + size/256
	return GenerateTile(region, size, n, n, rng)
}

// Grid is a deterministic chip-window view over a tile: cell (x, y) is the
// chipSize×chipSize crop at offset (x*stride, y*stride). Unlike
// ExtractChips — whose crops are jittered for training diversity — a grid
// crop consumes no randomness and reads shared tile bands only, so any
// number of goroutines can crop any cells in any order and every crop is
// byte-identical to a sequential walk. Tile IDs are derived from grid
// position alone (ID = y*W + x), never from visit order.
type Grid struct {
	Tile     *Tile
	ChipSize int
	Stride   int
	// W×H is the cell grid: every cell's crop lies fully inside the tile.
	W, H int
}

// Grid builds the chip-window view. Stride defaults to chipSize
// (non-overlapping) when <= 0.
func (t *Tile) Grid(chipSize, stride int) (*Grid, error) {
	size := t.Terrain.Size
	if stride <= 0 {
		stride = chipSize
	}
	if chipSize < 1 || chipSize >= size {
		return nil, fmt.Errorf("geodata: chip %d does not fit tile %d", chipSize, size)
	}
	side := 1 + (size-chipSize)/stride
	return &Grid{Tile: t, ChipSize: chipSize, Stride: stride, W: side, H: side}, nil
}

// Cells returns the total cell count.
func (g *Grid) Cells() int { return g.W * g.H }

// ChipID returns the deterministic identifier of cell (x, y).
func (g *Grid) ChipID(x, y int) int { return y*g.W + x }

// CellOrigin returns the tile-space top-left corner of cell (x, y).
func (g *Grid) CellOrigin(x, y int) (x0, y0 int) { return x * g.Stride, y * g.Stride }

// ChipAt crops cell (x, y) into a labeled chip: Label is 1 when the window
// contains a stamped crossing (the scan's ground truth). The crop is a pure
// copy of the tile bands — no RNG, no shared mutable state — so concurrent
// scans over one grid see identical bytes.
func (g *Grid) ChipAt(x, y int) Chip {
	if x < 0 || x >= g.W || y < 0 || y >= g.H {
		panic(fmt.Sprintf("geodata: grid cell (%d,%d) outside %dx%d", x, y, g.W, g.H))
	}
	size := g.Tile.Terrain.Size
	chip := g.ChipSize
	x0, y0 := g.CellOrigin(x, y)
	bands := make([]float32, NumBands*chip*chip)
	for b := 0; b < NumBands; b++ {
		src := g.Tile.Bands[b*size*size : (b+1)*size*size]
		dst := bands[b*chip*chip : (b+1)*chip*chip]
		for r := 0; r < chip; r++ {
			copy(dst[r*chip:(r+1)*chip], src[(y0+r)*size+x0:(y0+r)*size+x0+chip])
		}
	}
	label := 0
	if g.CellHasCrossing(x, y) {
		label = 1
	}
	return Chip{Region: g.Tile.Region.Name, Label: label, Size: chip, Bands: bands}
}

// CellHasCrossing reports whether any stamped crossing falls inside cell
// (x, y)'s window.
func (g *Grid) CellHasCrossing(x, y int) bool {
	x0, y0 := g.CellOrigin(x, y)
	for _, c := range g.Tile.Crossings {
		if c.X >= x0 && c.X < x0+g.ChipSize && c.Y >= y0 && c.Y < y0+g.ChipSize {
			return true
		}
	}
	return false
}

// TruthCrossings counts the cells containing a stamped crossing — the
// exact-count reference a scan's detected count is compared against.
func (g *Grid) TruthCrossings() int {
	n := 0
	for y := 0; y < g.H; y++ {
		for x := 0; x < g.W; x++ {
			if g.CellHasCrossing(x, y) {
				n++
			}
		}
	}
	return n
}

// Tensor lays the chip out as a (1, channels, S, S) input tensor; channels
// must be 5 (DEM+R+G+B+NIR) or 7 (adding NDVI+NDWI), matching
// Corpus.Tensors' band selection.
func (c Chip) Tensor(channels int) *tensor.Tensor {
	if channels != 5 && channels != 7 {
		panic(fmt.Sprintf("geodata: chip supports 5 or 7 channels, got %d", channels))
	}
	plane := c.Size * c.Size
	x := tensor.New(1, channels, c.Size, c.Size)
	copy(x.Data(), c.Bands[:channels*plane])
	return x
}
