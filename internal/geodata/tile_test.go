package geodata

import (
	"bytes"
	"image/png"
	"math"
	"testing"

	"drainnas/internal/tensor"
)

func testTile(t *testing.T, seed uint64) *Tile {
	t.Helper()
	return GenerateTile(StudyRegions[0], 128, 3, 2, tensor.NewRNG(seed))
}

func TestGenerateTileHasCrossings(t *testing.T) {
	// With 3 near-vertical channels and 2 near-horizontal roads the
	// expected intersection count is ~6; require at least a couple.
	tile := testTile(t, 1)
	if len(tile.Crossings) < 2 {
		t.Fatalf("tile has %d crossings, want >= 2", len(tile.Crossings))
	}
	for _, c := range tile.Crossings {
		if c.X < 0 || c.X >= 128 || c.Y < 0 || c.Y >= 128 {
			t.Fatalf("crossing out of bounds: %+v", c)
		}
		// The crossing mask must carry mass near the stamp.
		if tile.Terrain.CrossingMask[c.Y*128+c.X] < 0.4 {
			t.Fatalf("weak crossing mask at %+v: %v", c, tile.Terrain.CrossingMask[c.Y*128+c.X])
		}
	}
}

func TestSegmentIntersection(t *testing.T) {
	// Crossing diagonals of the unit square meet at the center.
	x, y, ok := segmentIntersection(0, 0, 1, 1, 0, 1, 1, 0)
	if !ok || math.Abs(x-0.5) > 1e-12 || math.Abs(y-0.5) > 1e-12 {
		t.Fatalf("intersection (%v,%v,%v)", x, y, ok)
	}
	// Parallel segments do not intersect.
	if _, _, ok := segmentIntersection(0, 0, 1, 0, 0, 1, 1, 1); ok {
		t.Fatal("parallel segments intersected")
	}
	// Disjoint colinear-extended segments do not intersect.
	if _, _, ok := segmentIntersection(0, 0, 1, 1, 2, 0, 3, -1); ok {
		t.Fatal("disjoint segments intersected")
	}
}

func TestExtractChipsLabelsAndGeometry(t *testing.T) {
	tile := testTile(t, 2)
	rng := tensor.NewRNG(3)
	pos, neg := tile.ExtractChips(32, len(tile.Crossings), rng)
	if len(pos) != len(tile.Crossings) {
		t.Fatalf("positives %d, crossings %d", len(pos), len(tile.Crossings))
	}
	if len(neg) == 0 {
		t.Fatal("no negatives extracted")
	}
	for _, c := range pos {
		if c.Label != 1 || c.Size != 32 || len(c.Bands) != NumBands*32*32 {
			t.Fatalf("bad positive chip: label=%d size=%d", c.Label, c.Size)
		}
	}
	for _, c := range neg {
		if c.Label != 0 {
			t.Fatal("negative chip mislabeled")
		}
	}
}

func TestExtractedChipsCropTileBands(t *testing.T) {
	// A chip's DEM band must be an exact crop of the tile's DEM band.
	tile := testTile(t, 4)
	rng := tensor.NewRNG(5)
	pos, _ := tile.ExtractChips(32, 0, rng)
	if len(pos) == 0 {
		t.Skip("no crossings on this seed")
	}
	chip := pos[0]
	size := tile.Terrain.Size
	tileDEM := tile.Bands[:size*size]
	chipDEM := chip.Band(BandDEM)
	// Find the crop offset by matching the first row.
	found := false
	for y0 := 0; y0 <= size-32 && !found; y0++ {
		for x0 := 0; x0 <= size-32 && !found; x0++ {
			match := true
			for x := 0; x < 32; x++ {
				if tileDEM[y0*size+x0+x] != chipDEM[x] {
					match = false
					break
				}
			}
			if !match {
				continue
			}
			// Verify the full crop.
			full := true
			for y := 0; y < 32 && full; y++ {
				for x := 0; x < 32; x++ {
					if tileDEM[(y0+y)*size+x0+x] != chipDEM[y*32+x] {
						full = false
						break
					}
				}
			}
			found = full
		}
	}
	if !found {
		t.Fatal("positive chip is not a crop of the tile")
	}
}

func TestNegativesAvoidCrossings(t *testing.T) {
	tile := testTile(t, 6)
	rng := tensor.NewRNG(7)
	_, neg := tile.ExtractChips(32, 10, rng)
	// Negatives carry no crossing-mask mass at their center area. We can't
	// locate the crop, so instead assert by construction: re-run extraction
	// and check that every sampled center was >= chipSize from a crossing.
	// The public invariant testable here: negatives exist and are labeled 0
	// (geometry enforced internally); verify crossing mask sum over all of
	// the tile is concentrated (sanity of the distance rule's premise).
	if len(neg) == 0 {
		t.Fatal("no negatives")
	}
	sum := 0.0
	for _, v := range tile.Terrain.CrossingMask {
		sum += v
	}
	if sum <= 0 {
		t.Fatal("tile has no crossing mask mass")
	}
}

func TestDrainageDensityDecreasingInThreshold(t *testing.T) {
	tile := testTile(t, 8)
	d10 := tile.DrainageDensity(10)
	d100 := tile.DrainageDensity(100)
	if d10 < d100 {
		t.Fatalf("density must fall with threshold: %v vs %v", d10, d100)
	}
	if d10 <= 0 || d10 > 1 {
		t.Fatalf("density %v out of range", d10)
	}
}

func TestFlowAccumulationConcentratesOnChannels(t *testing.T) {
	// Mean flow accumulation on carved-channel cells must exceed the
	// off-channel mean: water follows the carved drainage.
	tile := testTile(t, 9)
	tr := tile.Terrain
	var onSum, offSum float64
	var onN, offN int
	for i, m := range tr.ChannelMask {
		if m > 0.5 {
			onSum += tr.FlowAcc[i]
			onN++
		} else if m == 0 {
			offSum += tr.FlowAcc[i]
			offN++
		}
	}
	if onN == 0 || offN == 0 {
		t.Fatal("degenerate masks")
	}
	// D8 without pit filling fragments long flow paths, so require a 1.5x
	// concentration rather than a strict multiple.
	if onSum/float64(onN) < 1.5*offSum/float64(offN) {
		t.Fatalf("channel accumulation %.1f not concentrated vs %.1f",
			onSum/float64(onN), offSum/float64(offN))
	}
}

func TestGenerateTileDeterministic(t *testing.T) {
	a := testTile(t, 10)
	b := testTile(t, 10)
	if len(a.Crossings) != len(b.Crossings) {
		t.Fatal("crossing counts differ")
	}
	for i := range a.Bands {
		if a.Bands[i] != b.Bands[i] {
			t.Fatal("tile bands not deterministic")
		}
	}
}

func TestExtractChipsPanicsWhenChipTooBig(t *testing.T) {
	tile := testTile(t, 11)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	tile.ExtractChips(128, 1, tensor.NewRNG(1))
}

func TestChipPNGProducesValidImages(t *testing.T) {
	rng := tensor.NewRNG(21)
	chip := GenerateChip(StudyRegions[3], 1, 24, rng)
	for _, mode := range []RenderMode{RenderRGB, RenderDEM, RenderNDVI, RenderNDWI, RenderFalseColor} {
		var buf bytes.Buffer
		if err := ChipPNG(chip, mode, &buf); err != nil {
			t.Fatalf("mode %d: %v", mode, err)
		}
		img, err := png.Decode(&buf)
		if err != nil {
			t.Fatalf("mode %d: invalid PNG: %v", mode, err)
		}
		if img.Bounds().Dx() != 24 || img.Bounds().Dy() != 24 {
			t.Fatalf("mode %d: bounds %v", mode, img.Bounds())
		}
	}
	var buf bytes.Buffer
	if err := ChipPNG(chip, RenderMode(99), &buf); err == nil {
		t.Fatal("unknown mode accepted")
	}
}
