package geodata

import (
	"fmt"
	"image"
	"image/color"
	"image/png"
	"io"
)

// RenderMode selects what ChipPNG draws.
type RenderMode int

// Render modes.
const (
	// RenderRGB composes the natural-color orthophoto.
	RenderRGB RenderMode = iota
	// RenderDEM draws the hillshaded elevation band in grayscale.
	RenderDEM
	// RenderNDVI maps the vegetation index brown→green.
	RenderNDVI
	// RenderNDWI maps the water index tan→blue.
	RenderNDWI
	// RenderFalseColor composes NIR/RED/GREEN (the classic
	// vegetation-enhancing false-color composite).
	RenderFalseColor
)

// ChipPNG writes a chip band composition to w as a PNG, for visual
// inspection of the synthetic corpus (cmd/datagen -png).
func ChipPNG(c Chip, mode RenderMode, w io.Writer) error {
	img := image.NewRGBA(image.Rect(0, 0, c.Size, c.Size))
	n := c.Size * c.Size
	to8 := func(v float32) uint8 {
		f := float64(v)
		if f < 0 {
			f = 0
		}
		if f > 1 {
			f = 1
		}
		return uint8(f*254 + 0.5)
	}
	for i := 0; i < n; i++ {
		var col color.RGBA
		col.A = 255
		switch mode {
		case RenderRGB:
			col.R = to8(c.Band(BandRed)[i] * 2.2) // gain for display
			col.G = to8(c.Band(BandGreen)[i] * 2.2)
			col.B = to8(c.Band(BandBlue)[i] * 2.2)
		case RenderDEM:
			g := to8(c.Band(BandDEM)[i])
			col.R, col.G, col.B = g, g, g
		case RenderNDVI:
			// -1 → brown, +1 → green.
			v := (c.Band(BandNDVI)[i] + 1) / 2
			col.R = to8(0.55 * (1 - v))
			col.G = to8(0.2 + 0.7*v)
			col.B = to8(0.15 * (1 - v))
		case RenderNDWI:
			v := (c.Band(BandNDWI)[i] + 1) / 2
			col.R = to8(0.6 * (1 - v))
			col.G = to8(0.5*(1-v) + 0.3*v)
			col.B = to8(0.2 + 0.75*v)
		case RenderFalseColor:
			col.R = to8(c.Band(BandNIR)[i] * 1.6)
			col.G = to8(c.Band(BandRed)[i] * 2.2)
			col.B = to8(c.Band(BandGreen)[i] * 2.2)
		default:
			return fmt.Errorf("geodata: unknown render mode %d", mode)
		}
		img.SetRGBA(i%c.Size, i/c.Size, col)
	}
	return png.Encode(w, img)
}
