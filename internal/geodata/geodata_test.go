package geodata

import (
	"math"
	"testing"
	"testing/quick"

	"drainnas/internal/tensor"
)

func TestFractalFieldRangeAndDeterminism(t *testing.T) {
	a := FractalField(1, 32, 4, 4, 0.5)
	b := FractalField(1, 32, 4, 4, 0.5)
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("fractal field not deterministic")
		}
		if a[i] < 0 || a[i] > 1 {
			t.Fatalf("fractal value out of range: %v", a[i])
		}
	}
	c := FractalField(2, 32, 4, 4, 0.5)
	same := true
	for i := range a {
		if a[i] != c[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("different seeds produced identical fields")
	}
}

func TestValueNoiseContinuity(t *testing.T) {
	// Neighboring samples must be close (smooth interpolation).
	n := valueNoise{seed: 7}
	prev := n.At(0, 0.5)
	for i := 1; i <= 100; i++ {
		x := float64(i) * 0.01
		v := n.At(x, 0.5)
		if math.Abs(v-prev) > 0.1 {
			t.Fatalf("noise jump %.3f at x=%.2f", math.Abs(v-prev), x)
		}
		prev = v
	}
}

func TestNDVIandNDWI(t *testing.T) {
	// Dense vegetation: NIR high, RED low → NDVI near +1.
	if v := NDVI(0.6, 0.05); v < 0.7 {
		t.Fatalf("vegetation NDVI=%v", v)
	}
	// Open water: GREEN above NIR → NDWI positive.
	if v := NDWI(0.14, 0.02); v < 0.5 {
		t.Fatalf("water NDWI=%v", v)
	}
	// Degenerate zero denominator.
	if NDVI(0, 0) != 0 || NDWI(0, 0) != 0 {
		t.Fatal("zero denominator must yield 0")
	}
	// Property: outputs always in [-1, 1].
	f := func(a, b float64) bool {
		a, b = math.Abs(a), math.Abs(b)
		v := NDVI(a, b)
		w := NDWI(a, b)
		return v >= -1 && v <= 1 && w >= -1 && w <= 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestCarveChannelLowersElevation(t *testing.T) {
	tr := NewTerrain(32)
	line := polyline{{X: 16, Y: 0}, {X: 16, Y: 31}}
	tr.CarveChannel(line, 2, 3)
	// On-channel cell is lower than an off-channel cell.
	if tr.Elev[16*32+16] >= tr.Elev[16*32+2] {
		t.Fatal("channel not carved")
	}
	if tr.ChannelMask[16*32+16] < 0.9 {
		t.Fatalf("channel mask weak: %v", tr.ChannelMask[16*32+16])
	}
	if tr.ChannelMask[16*32+2] > 0.1 {
		t.Fatalf("channel mask leaks: %v", tr.ChannelMask[16*32+2])
	}
}

func TestRaiseRoadLiftsElevation(t *testing.T) {
	tr := NewTerrain(32)
	line := polyline{{X: 0, Y: 16}, {X: 31, Y: 16}}
	tr.RaiseRoad(line, 2, 2, 1.5)
	if tr.Elev[16*32+10] < 1.4 {
		t.Fatalf("road crown too low: %v", tr.Elev[16*32+10])
	}
	if tr.Elev[2*32+10] > 0.1 {
		t.Fatalf("road influence leaks far: %v", tr.Elev[2*32+10])
	}
}

func TestStampCrossingSagsEmbankment(t *testing.T) {
	tr := NewTerrain(32)
	tr.RaiseRoad(polyline{{X: 0, Y: 16}, {X: 31, Y: 16}}, 2, 2, 2)
	before := tr.Elev[16*32+16]
	tr.StampCrossing(16, 16, 2.5, 1.5)
	after := tr.Elev[16*32+16]
	if after >= before {
		t.Fatal("crossing did not sag the embankment")
	}
	if tr.CrossingMask[16*32+16] < 0.9 {
		t.Fatalf("crossing mask weak: %v", tr.CrossingMask[16*32+16])
	}
}

func TestFlowAccumulationOnTiltedPlane(t *testing.T) {
	// On a plane tilted along +x, flow runs in -x and accumulation grows
	// toward the low edge.
	size := 16
	tr := NewTerrain(size)
	for y := 0; y < size; y++ {
		for x := 0; x < size; x++ {
			tr.Elev[y*size+x] = float64(x)
		}
	}
	tr.FlowAccumulation()
	// Low-edge cells accumulate their entire row.
	for y := 0; y < size; y++ {
		if got := tr.FlowAcc[y*size]; got != float64(size) {
			t.Fatalf("row %d low-edge accumulation %v, want %v", y, got, size)
		}
	}
}

func TestFlowAccumulationMassConservation(t *testing.T) {
	// Property: every cell's accumulation is at least 1 and at most n, and
	// the maximum accumulation equals the largest drainage basin.
	f := func(seed uint64) bool {
		size := 12
		tr := NewTerrain(size)
		field := FractalField(seed, size, 3, 4, 0.5)
		copy(tr.Elev, field)
		tr.FlowAccumulation()
		for _, a := range tr.FlowAcc {
			if a < 1 || a > float64(size*size) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

func TestChannelCellsThreshold(t *testing.T) {
	size := 16
	tr := NewTerrain(size)
	for y := 0; y < size; y++ {
		for x := 0; x < size; x++ {
			tr.Elev[y*size+x] = float64(x)
		}
	}
	tr.FlowAccumulation()
	cells := tr.ChannelCells(float64(size))
	if len(cells) != size {
		t.Fatalf("channel cells = %d, want %d (the low edge)", len(cells), size)
	}
}

func TestGenerateChipBandsSane(t *testing.T) {
	rng := tensor.NewRNG(3)
	chip := GenerateChip(StudyRegions[0], 1, 32, rng)
	if chip.Size != 32 || len(chip.Bands) != NumBands*32*32 {
		t.Fatalf("chip geometry: size=%d bands=%d", chip.Size, len(chip.Bands))
	}
	// DEM normalized to [0, 1]; reflectances in [0, 1]; indices in [-1, 1].
	for b := 0; b < NumBands; b++ {
		lo, hi := float32(math.Inf(1)), float32(math.Inf(-1))
		for _, v := range chip.Band(b) {
			if v < lo {
				lo = v
			}
			if v > hi {
				hi = v
			}
		}
		switch b {
		case BandNDVI, BandNDWI:
			if lo < -1 || hi > 1 {
				t.Fatalf("band %s out of range [%v, %v]", BandNames[b], lo, hi)
			}
		default:
			if lo < 0 || hi > 1 {
				t.Fatalf("band %s out of range [%v, %v]", BandNames[b], lo, hi)
			}
		}
	}
}

func TestPositiveChipsHaveCrossingSignature(t *testing.T) {
	// A positive scene must contain both road and channel masks overlapping
	// near the stamped crossing; negatives must not have a crossing mask.
	rng := tensor.NewRNG(5)
	pos := BuildScene(StudyRegions[1], SceneCrossing, 48, rng)
	sumCross := 0.0
	for _, v := range pos.CrossingMask {
		sumCross += v
	}
	if sumCross < 1 {
		t.Fatalf("positive scene crossing mass %v", sumCross)
	}
	neg := BuildScene(StudyRegions[1], SceneParallel, 48, rng)
	for _, v := range neg.CrossingMask {
		if v != 0 {
			t.Fatal("negative scene has crossing mask")
		}
	}
	// Hard negative still contains both features.
	sumChan, sumRoad := 0.0, 0.0
	for i := range neg.ChannelMask {
		sumChan += neg.ChannelMask[i]
		sumRoad += neg.RoadMask[i]
	}
	if sumChan < 1 || sumRoad < 1 {
		t.Fatalf("parallel scene missing features: chan=%v road=%v", sumChan, sumRoad)
	}
}

func TestGenerateCorpusCountsMatchTable1Scaled(t *testing.T) {
	c := GenerateCorpus(CorpusOptions{ChipSize: 16, Scale: 100, Seed: 1})
	counts := c.CountByRegion()
	for _, r := range StudyRegions {
		v := counts[r.Name]
		wantT := scaledCount(r.TrueSamples, 100)
		wantF := scaledCount(r.FalseSamples, 100)
		if v[0] != wantT || v[1] != wantF {
			t.Fatalf("%s counts %v, want [%d %d]", r.Name, v, wantT, wantF)
		}
	}
	if b := c.Balance(); math.Abs(b-0.5) > 0.02 {
		t.Fatalf("corpus balance %v", b)
	}
}

func TestGenerateCorpusDeterministicAcrossParallelism(t *testing.T) {
	a := GenerateCorpus(CorpusOptions{ChipSize: 12, Scale: 400, Seed: 9})
	b := GenerateCorpus(CorpusOptions{ChipSize: 12, Scale: 400, Seed: 9})
	if len(a.Chips) != len(b.Chips) {
		t.Fatal("chip counts differ")
	}
	for i := range a.Chips {
		for j := range a.Chips[i].Bands {
			if a.Chips[i].Bands[j] != b.Chips[i].Bands[j] {
				t.Fatalf("chip %d band data differs", i)
			}
		}
	}
}

func TestTable1FullCounts(t *testing.T) {
	if TotalSamples() != 12068 {
		t.Fatalf("Table 1 total = %d, want 12068", TotalSamples())
	}
	wantTrue := map[string]int{"Nebraska": 2022, "Illinois": 1011, "North Dakota": 613, "California": 2388}
	for _, r := range StudyRegions {
		if r.TrueSamples != wantTrue[r.Name] || r.FalseSamples != r.TrueSamples {
			t.Fatalf("%s counts %d/%d", r.Name, r.TrueSamples, r.FalseSamples)
		}
	}
}

func TestRegionByName(t *testing.T) {
	if _, ok := RegionByName("Nebraska"); !ok {
		t.Fatal("Nebraska missing")
	}
	if _, ok := RegionByName("Atlantis"); ok {
		t.Fatal("unexpected region")
	}
}

func TestCorpusTensors(t *testing.T) {
	c := GenerateCorpus(CorpusOptions{ChipSize: 12, Scale: 800, Seed: 2})
	for _, ch := range []int{5, 7} {
		x, labels := c.Tensors(ch)
		if x.Dim(0) != len(c.Chips) || x.Dim(1) != ch || x.Dim(2) != 12 {
			t.Fatalf("tensor shape %v", x.Shape())
		}
		if len(labels) != len(c.Chips) {
			t.Fatal("label count mismatch")
		}
	}
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for unsupported channel count")
		}
	}()
	c.Tensors(4)
}

func TestChipStats(t *testing.T) {
	rng := tensor.NewRNG(11)
	chip := GenerateChip(StudyRegions[2], 0, 24, rng)
	mean, std := chip.Stats(BandDEM)
	if mean <= 0 || mean >= 1 || std <= 0 {
		t.Fatalf("DEM stats mean=%v std=%v", mean, std)
	}
}

func TestTable1Rendering(t *testing.T) {
	c := GenerateCorpus(CorpusOptions{ChipSize: 8, Scale: 1000, Seed: 3})
	s := c.Table1(nil)
	for _, want := range []string{"Nebraska", "Illinois", "North Dakota", "California", "All"} {
		if !containsStr(s, want) {
			t.Fatalf("Table1 missing %q:\n%s", want, s)
		}
	}
}

func containsStr(s, sub string) bool {
	for i := 0; i+len(sub) <= len(s); i++ {
		if s[i:i+len(sub)] == sub {
			return true
		}
	}
	return false
}

func TestRegionalCharacterIsMeasurable(t *testing.T) {
	// The four study regions are parameterized differently (vegetation,
	// soil); the rendered bands must reflect it, or "regions" would be
	// cosmetic. Illinois (vegetation 0.65) must show a higher mean NDVI
	// than California (0.35) across a sample of chips.
	meanNDVI := func(region Region, seed uint64) float64 {
		sum, n := 0.0, 0
		for i := 0; i < 6; i++ {
			rng := tensor.NewRNG(seed + uint64(i)*977)
			chip := GenerateChip(region, i%2, 24, rng)
			m, _ := chip.Stats(BandNDVI)
			sum += m
			n++
		}
		return sum / float64(n)
	}
	il, _ := RegionByName("Illinois")
	ca, _ := RegionByName("California")
	ndviIL := meanNDVI(il, 100)
	ndviCA := meanNDVI(ca, 200)
	if ndviIL <= ndviCA {
		t.Fatalf("Illinois NDVI %.3f not above California %.3f", ndviIL, ndviCA)
	}
}

func TestPositiveChipsSeparableFromNegatives(t *testing.T) {
	// A crude hand-built feature — minimum DEM value along the chip's
	// horizontal midline relative to the chip mean (the culvert sag) — must
	// already carry signal, demonstrating the labels are physically grounded
	// rather than memorizable noise.
	rng := tensor.NewRNG(300)
	score := func(label int) float64 {
		chip := GenerateChip(StudyRegions[0], label, 32, rng.Split())
		dem := chip.Band(BandDEM)
		mean, _ := chip.Stats(BandDEM)
		minMid := 1.0
		for x := 8; x < 24; x++ {
			v := float64(dem[16*32+x])
			if v < minMid {
				minMid = v
			}
		}
		return mean - minMid // larger = deeper local depression
	}
	posWins := 0
	const trials = 20
	for i := 0; i < trials; i++ {
		if score(1) > score(0) {
			posWins++
		}
	}
	if posWins < trials*6/10 {
		t.Fatalf("depression feature separates only %d/%d pairs", posWins, trials)
	}
}
