package geodata

import (
	"bytes"
	"testing"
)

func TestCorpusSaveLoadRoundTrip(t *testing.T) {
	src := GenerateCorpus(CorpusOptions{ChipSize: 16, Scale: 400, Seed: 12})
	var buf bytes.Buffer
	if err := src.SaveCorpus(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := LoadCorpus(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.ChipSize != src.ChipSize || len(got.Chips) != len(src.Chips) {
		t.Fatalf("geometry: %d chips of %dpx vs %d of %dpx",
			len(got.Chips), got.ChipSize, len(src.Chips), src.ChipSize)
	}
	for i := range src.Chips {
		a, b := src.Chips[i], got.Chips[i]
		if a.Region != b.Region || a.Label != b.Label || a.Size != b.Size {
			t.Fatalf("chip %d metadata mismatch: %+v vs %+v", i, a.Region, b.Region)
		}
		for j := range a.Bands {
			if a.Bands[j] != b.Bands[j] {
				t.Fatalf("chip %d band value %d differs", i, j)
			}
		}
	}
}

func TestLoadCorpusRejectsCorruption(t *testing.T) {
	src := GenerateCorpus(CorpusOptions{ChipSize: 8, Scale: 1000, Seed: 1})
	var buf bytes.Buffer
	if err := src.SaveCorpus(&buf); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()

	bad := append([]byte{}, data...)
	bad[0] ^= 0xFF
	if _, err := LoadCorpus(bytes.NewReader(bad)); err == nil {
		t.Fatal("bad magic accepted")
	}
	if _, err := LoadCorpus(bytes.NewReader(data[:len(data)/2])); err == nil {
		t.Fatal("truncated corpus accepted")
	}
	if _, err := LoadCorpus(bytes.NewReader(append(append([]byte{}, data...), 9))); err == nil {
		t.Fatal("trailing bytes accepted")
	}
	if _, err := LoadCorpus(bytes.NewReader(nil)); err == nil {
		t.Fatal("empty input accepted")
	}
}

func TestLoadedCorpusTrainsIdentically(t *testing.T) {
	// Tensors built from a reloaded corpus must match the original exactly.
	src := GenerateCorpus(CorpusOptions{ChipSize: 12, Scale: 800, Seed: 4})
	var buf bytes.Buffer
	if err := src.SaveCorpus(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadCorpus(&buf)
	if err != nil {
		t.Fatal(err)
	}
	xa, la := src.Tensors(7)
	xb, lb := loaded.Tensors(7)
	for i := range la {
		if la[i] != lb[i] {
			t.Fatal("labels differ")
		}
	}
	for i := range xa.Data() {
		if xa.Data()[i] != xb.Data()[i] {
			t.Fatal("tensor data differs")
		}
	}
}
