// Package geodata synthesizes the drainage-crossing training corpus that
// stands in for the paper's HRDEM + aerial-orthophoto dataset (Table 1).
//
// Each sample ("chip") is a small multi-channel raster: a fractal digital
// elevation model with a meandering drainage channel carved into it, an
// optional road embankment, and — for positive samples — a culvert-style
// drainage crossing where the road crosses the channel. From the terrain a
// four-band orthophoto (R, G, B, NIR) is rendered, and the NDVI and NDWI
// vegetation/water indices are derived exactly as in the paper
// (equations 1 and 2).
package geodata

import (
	"math"

	"drainnas/internal/tensor"
)

// valueNoise is deterministic lattice value noise: pseudo-random values on
// integer lattice points, smoothly interpolated between them. Summing
// octaves yields the fractal terrain base.
type valueNoise struct {
	seed uint64
}

// hash2 maps lattice coordinates to a uniform value in [0, 1).
func (v valueNoise) hash2(x, y int64) float64 {
	h := v.seed
	h ^= uint64(x) * 0x9E3779B97F4A7C15
	h = (h ^ (h >> 30)) * 0xBF58476D1CE4E5B9
	h ^= uint64(y) * 0xD1B54A32D192ED03
	h = (h ^ (h >> 27)) * 0x94D049BB133111EB
	h ^= h >> 31
	return float64(h>>11) / (1 << 53)
}

// smoothstep is the C¹ interpolation weight 3t² - 2t³.
func smoothstep(t float64) float64 { return t * t * (3 - 2*t) }

// At evaluates the noise field at a continuous coordinate, in [0, 1).
func (v valueNoise) At(x, y float64) float64 {
	x0 := math.Floor(x)
	y0 := math.Floor(y)
	tx := smoothstep(x - x0)
	ty := smoothstep(y - y0)
	ix, iy := int64(x0), int64(y0)
	v00 := v.hash2(ix, iy)
	v10 := v.hash2(ix+1, iy)
	v01 := v.hash2(ix, iy+1)
	v11 := v.hash2(ix+1, iy+1)
	top := v00 + (v10-v00)*tx
	bot := v01 + (v11-v01)*tx
	return top + (bot-top)*ty
}

// Fractal sums `octaves` octaves of value noise with per-octave gain
// (persistence) and lacunarity 2, normalized to [0, 1].
func (v valueNoise) Fractal(x, y float64, octaves int, persistence float64) float64 {
	sum, amp, norm := 0.0, 1.0, 0.0
	freq := 1.0
	for o := 0; o < octaves; o++ {
		sum += amp * v.At(x*freq, y*freq)
		norm += amp
		amp *= persistence
		freq *= 2
	}
	if norm == 0 {
		return 0
	}
	return sum / norm
}

// FractalField fills a size×size grid with fractal noise at the given base
// frequency (lattice cells across the grid).
func FractalField(seed uint64, size int, baseFreq float64, octaves int, persistence float64) []float64 {
	n := valueNoise{seed: seed}
	out := make([]float64, size*size)
	inv := baseFreq / float64(size)
	for y := 0; y < size; y++ {
		fy := float64(y) * inv
		for x := 0; x < size; x++ {
			out[y*size+x] = n.Fractal(float64(x)*inv, fy, octaves, persistence)
		}
	}
	return out
}

// gaussian returns exp(-d²/(2σ²)).
func gaussian(d, sigma float64) float64 {
	return math.Exp(-d * d / (2 * sigma * sigma))
}

// clamp01 clips v to [0, 1].
func clamp01(v float64) float64 {
	if v < 0 {
		return 0
	}
	if v > 1 {
		return 1
	}
	return v
}

// jitter returns a uniform value in [-amp, amp] from rng.
func jitter(rng *tensor.RNG, amp float64) float64 {
	return rng.Uniform(-amp, amp)
}
