package geodata

import (
	"bytes"
	"crypto/sha256"
	"encoding/binary"
	"sync"
	"testing"
)

func chipDigest(c Chip) [32]byte {
	var buf bytes.Buffer
	binary.Write(&buf, binary.LittleEndian, int64(c.Label))
	binary.Write(&buf, binary.LittleEndian, c.Bands)
	return sha256.Sum256(buf.Bytes())
}

// TestWatershedDeterminism pins that (region, size, seed) fully determines
// the synthesized watershed: bands, crossing list, and grid truth.
func TestWatershedDeterminism(t *testing.T) {
	region, _ := RegionByName("Nebraska")
	a := GenerateWatershed(region, 128, 42)
	b := GenerateWatershed(region, 128, 42)
	if !bytes.Equal(float32Bytes(a.Bands), float32Bytes(b.Bands)) {
		t.Fatal("same seed produced different bands")
	}
	if len(a.Crossings) != len(b.Crossings) {
		t.Fatalf("crossing lists differ: %d vs %d", len(a.Crossings), len(b.Crossings))
	}
	c := GenerateWatershed(region, 128, 43)
	if bytes.Equal(float32Bytes(a.Bands), float32Bytes(c.Bands)) {
		t.Fatal("different seeds produced identical bands")
	}
}

func float32Bytes(f []float32) []byte {
	var buf bytes.Buffer
	binary.Write(&buf, binary.LittleEndian, f)
	return buf.Bytes()
}

// TestGridDeterministicUnderConcurrency is the regression for scan
// reproducibility: many goroutines cropping cells in scrambled order must
// produce byte-identical chips (and identical IDs) to a sequential
// row-major walk.
func TestGridDeterministicUnderConcurrency(t *testing.T) {
	region, _ := RegionByName("Illinois")
	tile := GenerateWatershed(region, 160, 7)
	grid, err := tile.Grid(32, 32)
	if err != nil {
		t.Fatal(err)
	}
	if grid.W != 5 || grid.H != 5 || grid.Cells() != 25 {
		t.Fatalf("grid %dx%d", grid.W, grid.H)
	}

	sequential := make([][32]byte, grid.Cells())
	for y := 0; y < grid.H; y++ {
		for x := 0; x < grid.W; x++ {
			sequential[grid.ChipID(x, y)] = chipDigest(grid.ChipAt(x, y))
		}
	}

	for trial := 0; trial < 3; trial++ {
		concurrent := make([][32]byte, grid.Cells())
		var wg sync.WaitGroup
		// Reverse order, all cells at once: worst case for any hidden
		// visit-order dependence.
		for id := grid.Cells() - 1; id >= 0; id-- {
			wg.Add(1)
			go func(id int) {
				defer wg.Done()
				x, y := id%grid.W, id/grid.W
				concurrent[id] = chipDigest(grid.ChipAt(x, y))
			}(id)
		}
		wg.Wait()
		for id := range sequential {
			if concurrent[id] != sequential[id] {
				t.Fatalf("trial %d: cell %d differs between sequential and concurrent crops", trial, id)
			}
		}
	}
}

// TestGridTruth checks the truth accounting: every stamped crossing inside
// some cell makes that cell positive, ChipAt labels agree with
// CellHasCrossing, and a non-overlapping grid's truth count is bounded by
// the stamped crossing count.
func TestGridTruth(t *testing.T) {
	region, _ := RegionByName("California")
	tile := GenerateWatershed(region, 256, 11)
	grid, err := tile.Grid(32, 0) // stride defaults to chip size
	if err != nil {
		t.Fatal(err)
	}
	if grid.Stride != 32 {
		t.Fatalf("stride default = %d", grid.Stride)
	}
	if len(tile.Crossings) == 0 {
		t.Fatal("watershed has no crossings; scan smoke would be vacuous")
	}
	truth := grid.TruthCrossings()
	if truth == 0 {
		t.Fatal("no grid cell contains a crossing")
	}
	if truth > len(tile.Crossings) {
		t.Fatalf("truth %d exceeds stamped crossings %d on a non-overlapping grid", truth, len(tile.Crossings))
	}
	for y := 0; y < grid.H; y++ {
		for x := 0; x < grid.W; x++ {
			chip := grid.ChipAt(x, y)
			want := 0
			if grid.CellHasCrossing(x, y) {
				want = 1
			}
			if chip.Label != want {
				t.Fatalf("cell (%d,%d): label %d, truth %d", x, y, chip.Label, want)
			}
		}
	}
}

// TestChipTensor checks the 5- and 7-channel layouts match the corpus band
// selection.
func TestChipTensor(t *testing.T) {
	region, _ := RegionByName("Nebraska")
	tile := GenerateWatershed(region, 64, 3)
	grid, err := tile.Grid(16, 16)
	if err != nil {
		t.Fatal(err)
	}
	chip := grid.ChipAt(1, 2)
	for _, ch := range []int{5, 7} {
		x := chip.Tensor(ch)
		shape := x.Shape()
		if shape[0] != 1 || shape[1] != ch || shape[2] != 16 || shape[3] != 16 {
			t.Fatalf("channels %d: shape %v", ch, shape)
		}
		if !bytes.Equal(float32Bytes(x.Data()), float32Bytes(chip.Bands[:ch*16*16])) {
			t.Fatalf("channels %d: data does not match band-major prefix", ch)
		}
	}
}
