package geodata

import (
	"fmt"
	"strings"

	"drainnas/internal/parallel"
	"drainnas/internal/tensor"
)

// CorpusOptions configures corpus generation.
type CorpusOptions struct {
	// ChipSize is the square chip side in pixels.
	ChipSize int
	// Scale divides every Table 1 sample count (minimum 1 per class per
	// region), so tests and CPU-bound runs can use a miniature corpus with
	// the same structure. Scale 1 reproduces the full 12,068 chips.
	Scale int
	// Seed makes generation reproducible.
	Seed uint64
	// Regions defaults to StudyRegions when nil.
	Regions []Region
}

// Corpus is the generated chip collection.
type Corpus struct {
	Chips    []Chip
	ChipSize int
}

// scaledCount divides a Table 1 count by scale, keeping at least one sample.
func scaledCount(count, scale int) int {
	if scale <= 1 {
		return count
	}
	c := count / scale
	if c < 1 {
		c = 1
	}
	return c
}

// GenerateCorpus synthesizes a balanced corpus across the study regions.
// Chips are generated in parallel; each chip derives its RNG from the seed
// and its position, so the corpus is reproducible regardless of parallelism.
func GenerateCorpus(opts CorpusOptions) *Corpus {
	if opts.ChipSize <= 0 {
		opts.ChipSize = 64
	}
	if opts.Scale <= 0 {
		opts.Scale = 1
	}
	regions := opts.Regions
	if regions == nil {
		regions = StudyRegions
	}

	type job struct {
		region Region
		label  int
		seq    int
	}
	var jobs []job
	seq := 0
	for _, r := range regions {
		nTrue := scaledCount(r.TrueSamples, opts.Scale)
		nFalse := scaledCount(r.FalseSamples, opts.Scale)
		for i := 0; i < nTrue; i++ {
			jobs = append(jobs, job{r, 1, seq})
			seq++
		}
		for i := 0; i < nFalse; i++ {
			jobs = append(jobs, job{r, 0, seq})
			seq++
		}
	}

	chips := make([]Chip, len(jobs))
	parallel.Map(len(jobs), 0, func(i int) {
		j := jobs[i]
		rng := tensor.NewRNG(opts.Seed ^ (uint64(j.seq)+1)*0x9E3779B97F4A7C15)
		chips[i] = GenerateChip(j.region, j.label, opts.ChipSize, rng)
	})
	return &Corpus{Chips: chips, ChipSize: opts.ChipSize}
}

// CountByRegion tallies (true, false) chips per region name.
func (c *Corpus) CountByRegion() map[string][2]int {
	out := make(map[string][2]int)
	for _, chip := range c.Chips {
		v := out[chip.Region]
		if chip.Label == 1 {
			v[0]++
		} else {
			v[1]++
		}
		out[chip.Region] = v
	}
	return out
}

// Balance returns the fraction of positive chips.
func (c *Corpus) Balance() float64 {
	if len(c.Chips) == 0 {
		return 0
	}
	pos := 0
	for _, chip := range c.Chips {
		pos += chip.Label
	}
	return float64(pos) / float64(len(c.Chips))
}

// Table1 renders the corpus inventory in the layout of the paper's Table 1.
func (c *Corpus) Table1(regions []Region) string {
	if regions == nil {
		regions = StudyRegions
	}
	counts := c.CountByRegion()
	var b strings.Builder
	fmt.Fprintf(&b, "%-14s %-10s %6s %6s %6s\n", "Location", "DEM res", "True", "False", "Total")
	totT, totF := 0, 0
	for _, r := range regions {
		v := counts[r.Name]
		fmt.Fprintf(&b, "%-14s %-10s %6d %6d %6d\n",
			r.Name, fmt.Sprintf("%.2gm", r.DEMResolution), v[0], v[1], v[0]+v[1])
		totT += v[0]
		totF += v[1]
	}
	fmt.Fprintf(&b, "%-14s %-10s %6d %6d %6d\n", "All", "", totT, totF, totT+totF)
	return b.String()
}

// Tensors lays the corpus out as one (N, channels, S, S) tensor and a label
// slice. channels must be 5 (DEM+R+G+B+NIR) or 7 (adding NDVI+NDWI),
// matching the paper's two input variants.
func (c *Corpus) Tensors(channels int) (*tensor.Tensor, []int) {
	if channels != 5 && channels != 7 {
		panic(fmt.Sprintf("geodata: corpus supports 5 or 7 channels, got %d", channels))
	}
	n := len(c.Chips)
	s := c.ChipSize
	x := tensor.New(n, channels, s, s)
	labels := make([]int, n)
	plane := s * s
	for i, chip := range c.Chips {
		labels[i] = chip.Label
		dst := x.Data()[i*channels*plane : (i+1)*channels*plane]
		copy(dst, chip.Bands[:channels*plane])
	}
	return x, labels
}
