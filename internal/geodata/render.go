package geodata

import (
	"math"

	"drainnas/internal/tensor"
)

// RenderBands turns a synthesized terrain into the chip's 7 bands:
// normalized DEM, the four orthophoto bands (RED, GREEN, BLUE, NIR) rendered
// from a simple land-cover model, and the derived NDVI / NDWI indices.
//
// Land-cover model: background is a soil/vegetation mix driven by a moisture
// field (low-lying and channel-adjacent cells are wetter and greener); the
// channel bed carries open water; the road crown is bare pavement.
// Reflectances follow the qualitative spectra the indices rely on:
// vegetation is NIR-bright and RED-dark (NDVI high), open water is
// GREEN-bright and NIR-dark (NDWI high), pavement is spectrally flat.
func RenderBands(t *Terrain, region Region, rng *tensor.RNG) []float32 {
	size := t.Size
	n := size * size
	bands := make([]float32, NumBands*n)

	lo, hi := t.ElevRange()
	span := hi - lo
	if span < 1e-9 {
		span = 1
	}

	// Moisture: inverse normalized elevation plus channel proximity.
	moistNoise := FractalField(rng.Uint64(), size, 5, 3, 0.5)
	vegNoise := FractalField(rng.Uint64(), size, 6, 3, 0.5)

	dem := bands[BandDEM*n : (BandDEM+1)*n]
	red := bands[BandRed*n : (BandRed+1)*n]
	green := bands[BandGreen*n : (BandGreen+1)*n]
	blue := bands[BandBlue*n : (BandBlue+1)*n]
	nir := bands[BandNIR*n : (BandNIR+1)*n]
	ndvi := bands[BandNDVI*n : (BandNDVI+1)*n]
	ndwi := bands[BandNDWI*n : (BandNDWI+1)*n]

	sensorNoise := 0.015
	for i := 0; i < n; i++ {
		elevN := (t.Elev[i] - lo) / span
		dem[i] = float32(elevN)

		moisture := clamp01(0.65*(1-elevN) + 0.5*t.ChannelMask[i] + 0.25*(moistNoise[i]-0.5))
		veg := clamp01(region.Vegetation + 0.5*(vegNoise[i]-0.5) + 0.3*(moisture-0.5))
		water := clamp01(t.ChannelMask[i]*1.2 - 0.35) // open water only near the channel axis
		road := t.RoadMask[i]
		if road > 0.6 {
			road = 1
		}

		// Component reflectances in [0, 1].
		soilR, soilG, soilB, soilN := 0.30+0.25*region.SoilTone, 0.26+0.18*region.SoilTone, 0.20+0.1*region.SoilTone, 0.42
		vegR, vegG, vegB, vegN := 0.06, 0.16, 0.05, 0.62
		watR, watG, watB, watN := 0.05, 0.14, 0.18, 0.02
		pavR, pavG, pavB, pavN := 0.38, 0.38, 0.40, 0.34

		// Background soil/vegetation mix, then water and pavement overlays.
		r := soilR*(1-veg) + vegR*veg
		g := soilG*(1-veg) + vegG*veg
		b := soilB*(1-veg) + vegB*veg
		nr := soilN*(1-veg) + vegN*veg
		r = r*(1-water) + watR*water
		g = g*(1-water) + watG*water
		b = b*(1-water) + watB*water
		nr = nr*(1-water) + watN*water
		r = r*(1-road) + pavR*road
		g = g*(1-road) + pavG*road
		b = b*(1-road) + pavB*road
		nr = nr*(1-road) + pavN*road

		// Hillshade modulation from the local gradient gives the orthophoto
		// the DEM-correlated texture real imagery has.
		shade := 1.0
		x, y := i%size, i/size
		if x+1 < size && y+1 < size {
			dzdx := t.Elev[i+1] - t.Elev[i]
			dzdy := t.Elev[i+size] - t.Elev[i]
			shade = clamp01(0.85 + 0.1*(dzdx-dzdy))
		}
		r = clamp01(r*shade + rng.NormFloat64()*sensorNoise)
		g = clamp01(g*shade + rng.NormFloat64()*sensorNoise)
		b = clamp01(b*shade + rng.NormFloat64()*sensorNoise)
		nr = clamp01(nr*shade + rng.NormFloat64()*sensorNoise)

		red[i] = float32(r)
		green[i] = float32(g)
		blue[i] = float32(b)
		nir[i] = float32(nr)
		ndvi[i] = float32(NDVI(nr, r))
		ndwi[i] = float32(NDWI(g, nr))
	}
	return bands
}

// NDVI computes the Normalized Difference Vegetation Index (equation 1):
// (NIR - RED) / (NIR + RED). Zero denominators yield 0.
func NDVI(nir, red float64) float64 {
	den := nir + red
	if math.Abs(den) < 1e-9 {
		return 0
	}
	return (nir - red) / den
}

// NDWI computes the Normalized Difference Water Index (equation 2):
// (GREEN - NIR) / (GREEN + NIR). Zero denominators yield 0.
func NDWI(green, nir float64) float64 {
	den := green + nir
	if math.Abs(den) < 1e-9 {
		return 0
	}
	return (green - nir) / den
}
