package geodata

// Region describes one of the paper's four study regions (Table 1) together
// with the synthesis parameters that give each region a distinct terrain and
// land-cover character.
type Region struct {
	Name          string
	DEMSource     string
	DEMResolution float64 // meters (standardized to 1 m in the paper)
	TrueSamples   int     // Table 1 "True sample"
	FalseSamples  int     // Table 1 "False sample"
	OrthoSource   string

	// Synthesis character: relief (m of elevation range), terrain roughness
	// (fractal persistence), background vegetation density [0,1], and soil
	// brightness [0,1].
	Relief     float64
	Roughness  float64
	Vegetation float64
	SoilTone   float64
}

// Total returns the region's total sample count.
func (r Region) Total() int { return r.TrueSamples + r.FalseSamples }

// StudyRegions reproduces Table 1: the four watersheds with their DEM
// sources, resolutions and balanced sample counts.
var StudyRegions = []Region{
	{
		Name:          "Nebraska",
		DEMSource:     "Nebraska Department of Natural Resource",
		DEMResolution: 1.0,
		TrueSamples:   2022,
		FalseSamples:  2022,
		OrthoSource:   "USGS National Agriculture Imagery Program (NAIP) (1m resolution)",
		Relief:        6, Roughness: 0.45, Vegetation: 0.55, SoilTone: 0.55,
	},
	{
		Name:          "Illinois",
		DEMSource:     "Illinois Geospatial Data Clearinghouse",
		DEMResolution: 0.3,
		TrueSamples:   1011,
		FalseSamples:  1011,
		OrthoSource:   "USGS National Agriculture Imagery Program (NAIP) (1m resolution)",
		Relief:        8, Roughness: 0.5, Vegetation: 0.65, SoilTone: 0.45,
	},
	{
		Name:          "North Dakota",
		DEMSource:     "North Dakota GIS Hub Data Portal",
		DEMResolution: 0.61,
		TrueSamples:   613,
		FalseSamples:  613,
		OrthoSource:   "USGS National Agriculture Imagery Program (NAIP) (1m resolution)",
		Relief:        4, Roughness: 0.4, Vegetation: 0.45, SoilTone: 0.6,
	},
	{
		Name:          "California",
		DEMSource:     "USGS",
		DEMResolution: 1.0,
		TrueSamples:   2388,
		FalseSamples:  2388,
		OrthoSource:   "USGS National Agriculture Imagery Program (NAIP) (1m resolution)",
		Relief:        12, Roughness: 0.55, Vegetation: 0.35, SoilTone: 0.7,
	},
}

// TotalSamples returns the corpus-wide sample count of Table 1 (12,068).
func TotalSamples() int {
	n := 0
	for _, r := range StudyRegions {
		n += r.Total()
	}
	return n
}

// RegionByName looks a study region up by name; ok is false when absent.
func RegionByName(name string) (Region, bool) {
	for _, r := range StudyRegions {
		if r.Name == name {
			return r, true
		}
	}
	return Region{}, false
}
