package geodata

import (
	"fmt"
	"math"

	"drainnas/internal/tensor"
)

// Tile is a large synthesized watershed raster with known drainage-crossing
// locations — the analogue of one study region's HRDEM/orthophoto mosaic
// from which the paper's training chips were segmented.
type Tile struct {
	Region  Region
	Terrain *Terrain
	// Bands is the tile-level 7-band render (band-major, like Chip.Bands).
	Bands []float32
	// Crossings are the stamped culvert locations.
	Crossings []struct{ X, Y int }
}

// GenerateTile synthesizes a size×size watershed with several meandering
// channels, several roads, and a crossing stamped at every road–channel
// intersection. The terrain's flow accumulation is computed so the drainage
// network is extractable (ChannelCells), mirroring the paper's
// HRDEM-derived hydrography.
func GenerateTile(region Region, size, nChannels, nRoads int, rng *tensor.RNG) *Tile {
	if size < 32 {
		panic(fmt.Sprintf("geodata: tile size %d too small", size))
	}
	t := NewTerrain(size)
	base := FractalField(rng.Uint64(), size, 4.0, 6, region.Roughness)
	gx, gy := jitter(rng, 1), jitter(rng, 1)
	for y := 0; y < size; y++ {
		for x := 0; x < size; x++ {
			g := (gx*float64(x) + gy*float64(y)) / float64(size)
			t.Elev[y*size+x] = region.Relief * (base[y*size+x] + 0.3*g)
		}
	}

	var channels []polyline
	for c := 0; c < nChannels; c++ {
		line := meander(rng, size, 0, 0, false)
		channels = append(channels, line)
		t.CarveChannel(line, rng.Uniform(1.2, 2.5), region.Relief*rng.Uniform(0.25, 0.5))
	}
	var roads []polyline
	for r := 0; r < nRoads; r++ {
		line := straightRoad(rng, size, 0, 0, false)
		roads = append(roads, line)
		t.RaiseRoad(line, rng.Uniform(1.5, 2.5), rng.Uniform(1.5, 3), region.Relief*rng.Uniform(0.15, 0.3))
	}

	tile := &Tile{Region: region, Terrain: t}
	for _, ch := range channels {
		for _, rd := range roads {
			for _, pt := range polylineIntersections(ch, rd) {
				x, y := int(pt.X+0.5), int(pt.Y+0.5)
				if x < 2 || y < 2 || x >= size-2 || y >= size-2 {
					continue
				}
				t.StampCrossing(pt.X, pt.Y, rng.Uniform(2, 3.5), region.Relief*rng.Uniform(0.2, 0.4))
				tile.Crossings = append(tile.Crossings, struct{ X, Y int }{x, y})
			}
		}
	}
	t.FlowAccumulation()
	tile.Bands = RenderBands(t, region, rng)
	return tile
}

// polylineIntersections returns the intersection points of two polylines.
func polylineIntersections(a, b polyline) []struct{ X, Y float64 } {
	var out []struct{ X, Y float64 }
	for i := 0; i+1 < len(a); i++ {
		for j := 0; j+1 < len(b); j++ {
			if x, y, ok := segmentIntersection(
				a[i].X, a[i].Y, a[i+1].X, a[i+1].Y,
				b[j].X, b[j].Y, b[j+1].X, b[j+1].Y); ok {
				out = append(out, struct{ X, Y float64 }{x, y})
			}
		}
	}
	return out
}

// segmentIntersection computes the intersection of segments p1p2 and p3p4.
func segmentIntersection(x1, y1, x2, y2, x3, y3, x4, y4 float64) (x, y float64, ok bool) {
	d := (x2-x1)*(y4-y3) - (y2-y1)*(x4-x3)
	if math.Abs(d) < 1e-12 {
		return 0, 0, false // parallel
	}
	t := ((x3-x1)*(y4-y3) - (y3-y1)*(x4-x3)) / d
	u := ((x3-x1)*(y2-y1) - (y3-y1)*(x2-x1)) / d
	if t < 0 || t > 1 || u < 0 || u > 1 {
		return 0, 0, false
	}
	return x1 + t*(x2-x1), y1 + t*(y2-y1), true
}

// ExtractChips segments the tile into labeled chips: positives centered on
// crossings (with jitter), negatives sampled at least minDist cells from
// every crossing, up to nNeg of them. Chips are crops of the tile-level
// bands, exactly as the paper's segmentation crops its mosaics.
func (t *Tile) ExtractChips(chipSize, nNeg int, rng *tensor.RNG) (positives, negatives []Chip) {
	size := t.Terrain.Size
	if chipSize >= size {
		panic(fmt.Sprintf("geodata: chip %d does not fit tile %d", chipSize, size))
	}
	half := chipSize / 2
	crop := func(cx, cy int) Chip {
		x0 := clampInt(cx-half, 0, size-chipSize)
		y0 := clampInt(cy-half, 0, size-chipSize)
		bands := make([]float32, NumBands*chipSize*chipSize)
		for b := 0; b < NumBands; b++ {
			src := t.Bands[b*size*size : (b+1)*size*size]
			dst := bands[b*chipSize*chipSize : (b+1)*chipSize*chipSize]
			for y := 0; y < chipSize; y++ {
				copy(dst[y*chipSize:(y+1)*chipSize], src[(y0+y)*size+x0:(y0+y)*size+x0+chipSize])
			}
		}
		return Chip{Region: t.Region.Name, Size: chipSize, Bands: bands}
	}

	for _, c := range t.Crossings {
		jx := c.X + int(jitter(rng, float64(chipSize)*0.15))
		jy := c.Y + int(jitter(rng, float64(chipSize)*0.15))
		chip := crop(jx, jy)
		chip.Label = 1
		positives = append(positives, chip)
	}

	minDist := float64(chipSize)
	attempts := 0
	for len(negatives) < nNeg && attempts < nNeg*50 {
		attempts++
		cx := rng.Intn(size-chipSize) + half
		cy := rng.Intn(size-chipSize) + half
		tooClose := false
		for _, c := range t.Crossings {
			if math.Hypot(float64(cx-c.X), float64(cy-c.Y)) < minDist {
				tooClose = true
				break
			}
		}
		if tooClose {
			continue
		}
		chip := crop(cx, cy)
		chip.Label = 0
		negatives = append(negatives, chip)
	}
	return positives, negatives
}

// DrainageDensity returns the fraction of tile cells whose flow
// accumulation exceeds the threshold — a hydrography summary statistic for
// validating the synthesized network.
func (t *Tile) DrainageDensity(threshold float64) float64 {
	cells := t.Terrain.ChannelCells(threshold)
	return float64(len(cells)) / float64(t.Terrain.Size*t.Terrain.Size)
}

func clampInt(v, lo, hi int) int {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}
