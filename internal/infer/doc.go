// Package infer is the deployment-side inference runtime: it loads a model
// container exported by onnxsize (graph description + trained weights) and
// executes it on CPU with no dependency on the training stack — the role a
// TFLite/OpenVINO runtime plays on the paper's resource-limited devices.
//
// # Architecture: Plan and Session
//
// Containers are compiled, not interpreted. Compile (or LoadPlan) lowers the
// node list once into an explicit op sequence: residual topology is resolved
// at compile time instead of re-sniffed from node names per call, every
// BatchNormalization folds into the preceding convolution's weights and
// bias, trailing ReLUs fuse into conv and residual-join epilogues, and each
// weight becomes a tensor.PackedConv whose GEMM panels pack once and persist
// (the fully-connected head runs as a pointwise convolution, so its weight
// is never transposed at call time).
//
//   - Plan is immutable and shared: one per model, safe for any number of
//     goroutines.
//   - Session is the per-goroutine executor: it owns shape-keyed activation
//     arenas, so a steady-state Forward allocates nothing and returns
//     arena-owned logits (valid until that session's next Forward).
//
// # Migrating from Load/Runtime to Compile/Plan
//
// Old (per-call interpreter era):
//
//	rt, err := infer.Load(f)
//	logits, err := rt.Forward(x) // fresh allocations every call
//
// New:
//
//	plan, err := infer.LoadPlan(f) // or infer.Compile(dec)
//	sess := plan.NewSession()      // one per goroutine
//	logits, err := sess.Forward(x) // zero-alloc steady state; logits valid
//	                               // until sess's next Forward
//
// Runtime (and its Forward/Classify/RunBatch) remains as a thin
// compatibility wrapper that compiles eagerly and runs pooled sessions
// internally; it costs one logits copy per call over the session API.
package infer
