package infer

import (
	"bytes"
	"testing"

	"drainnas/internal/onnxsize"
	"drainnas/internal/resnet"
	"drainnas/internal/tensor"
)

// FuzzLoad feeds arbitrary byte streams to the runtime loader. Malformed,
// truncated or hostile containers must surface as errors, never as panics,
// and any container Load accepts must yield a runtime with a sane input
// contract.
func FuzzLoad(f *testing.F) {
	cfg := resnet.Config{
		Channels: 1, Batch: 1, KernelSize: 3, Stride: 2, Padding: 1,
		PoolChoice: 0, InitialOutputFeature: 2, NumClasses: 2,
	}
	m, err := resnet.New(cfg, tensor.NewRNG(5))
	if err != nil {
		f.Fatal(err)
	}
	var buf bytes.Buffer
	if _, err := onnxsize.Export(m, &buf); err != nil {
		f.Fatal(err)
	}
	valid := buf.Bytes()
	f.Add(valid)
	f.Add([]byte{})
	f.Add([]byte("DNNX\x01"))
	f.Add([]byte("not a container"))
	f.Add(valid[:len(valid)/3])
	f.Add(valid[:len(valid)-1])
	mutated := append([]byte{}, valid...)
	mutated[len(mutated)/2] ^= 0xff
	f.Add(mutated)

	f.Fuzz(func(t *testing.T, data []byte) {
		rt, err := Load(bytes.NewReader(data))
		if err != nil {
			return
		}
		if rt == nil {
			t.Fatal("nil runtime without error")
		}
		if rt.InputChannels() <= 0 {
			t.Fatalf("accepted container with %d input channels", rt.InputChannels())
		}
		if rt.GraphName() == "" {
			// Legal but worth distinguishing: Load only validates conv1, a
			// nameless graph is fine.
			return
		}
	})
}
