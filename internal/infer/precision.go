package infer

import (
	"fmt"
	"strings"
)

// Precision identifies the numeric mode a compiled plan executes in.
type Precision string

const (
	// PrecisionFP32 is the float32 mode every Compile produces.
	PrecisionFP32 Precision = "fp32"
	// PrecisionInt8 is the post-training-quantized mode Plan.Quantize
	// produces: int8 activations and weights, int32 accumulation, float32
	// logits.
	PrecisionInt8 Precision = "int8"
)

// Bits returns the activation width of the precision mode — the value the
// search tier minimizes as its fourth objective.
func (p Precision) Bits() int {
	if p == PrecisionInt8 {
		return 8
	}
	return 32
}

// ParsePrecision normalizes a user-supplied precision selector. The empty
// string means fp32, keeping every pre-quantization client request valid.
func ParsePrecision(s string) (Precision, error) {
	switch strings.ToLower(strings.TrimSpace(s)) {
	case "", "fp32", "float32", "f32":
		return PrecisionFP32, nil
	case "int8", "i8":
		return PrecisionInt8, nil
	default:
		return "", fmt.Errorf("infer: unknown precision %q (want fp32 or int8)", s)
	}
}

// ParseModelKey splits a serving-tier model key into its model name and
// precision: "culvert@int8" selects the int8 form of model "culvert", a bare
// name selects fp32. The separator never appears in exporter model names.
func ParseModelKey(key string) (name string, prec Precision, err error) {
	name, sel, found := strings.Cut(key, "@")
	if !found {
		return key, PrecisionFP32, nil
	}
	if name == "" {
		return "", "", fmt.Errorf("infer: model key %q has an empty model name", key)
	}
	prec, err = ParsePrecision(sel)
	if err != nil {
		return "", "", err
	}
	return name, prec, nil
}

// ModelKey joins a model name and precision back into a serving key, the
// inverse of ParseModelKey. fp32 keys stay bare for compatibility.
func ModelKey(name string, prec Precision) string {
	if prec == PrecisionFP32 || prec == "" {
		return name
	}
	return name + "@" + string(prec)
}
