package infer

import (
	"bytes"
	"math"
	"testing"

	"drainnas/internal/resnet"
	"drainnas/internal/tensor"
)

// closeTo asserts |got-want| <= tol*(1+|want|), i.e. agreement within tol
// in both absolute and relative terms.
func closeTo(t *testing.T, label string, got, want float32, tol float64) {
	t.Helper()
	diff := math.Abs(float64(got - want))
	if diff > tol*(1+math.Abs(float64(want))) {
		t.Fatalf("%s: got %v, want %v (diff %g > tol %g)", label, got, want, diff, tol)
	}
}

// TestBatchedRuntimeParity is the golden cross-stack check: for several
// stem configurations, a trained model exported through onnxsize and
// reloaded through the standalone runtime must reproduce the training
// stack's forward pass within 1e-4 — on the single-image path AND on the
// batched RunBatch path, which additionally must agree with the
// single-image path to float32 round-off.
func TestBatchedRuntimeParity(t *testing.T) {
	configs := []resnet.Config{
		// No stem pool, small 3x3 stem.
		{Channels: 5, Batch: 4, KernelSize: 3, Stride: 2, Padding: 1,
			PoolChoice: 0, InitialOutputFeature: 8, NumClasses: 2},
		// Stock-style 7x7 stem with 3x3/2 pool, 7 channels.
		{Channels: 7, Batch: 4, KernelSize: 7, Stride: 2, Padding: 3,
			PoolChoice: 1, KernelSizePool: 3, StridePool: 2, InitialOutputFeature: 8, NumClasses: 2},
		// Stride-1 stem with a 2x2 pool.
		{Channels: 5, Batch: 4, KernelSize: 3, Stride: 1, Padding: 2,
			PoolChoice: 1, KernelSizePool: 2, StridePool: 2, InitialOutputFeature: 8, NumClasses: 2},
	}
	for _, cfg := range configs {
		m, container := exportModel(t, cfg, 23)
		rt, err := Load(bytes.NewReader(container))
		if err != nil {
			t.Fatalf("cfg %s: %v", cfg.Key(), err)
		}

		// A mixed batch: rank-4 and rank-3 inputs, two spatial sizes, so
		// RunBatch exercises both accepted layouts and its size grouping.
		rng := tensor.NewRNG(91)
		inputs := []*tensor.Tensor{
			tensor.RandNormal(rng, 1, 1, cfg.Channels, 32, 32),
			tensor.RandNormal(rng, 1, cfg.Channels, 32, 32), // rank-3
			tensor.RandNormal(rng, 1, 1, cfg.Channels, 48, 48),
			tensor.RandNormal(rng, 1, 1, cfg.Channels, 32, 32),
			tensor.RandNormal(rng, 1, cfg.Channels, 48, 48), // rank-3
		}
		preds, err := rt.RunBatch(inputs)
		if err != nil {
			t.Fatalf("cfg %s: RunBatch: %v", cfg.Key(), err)
		}
		if len(preds) != len(inputs) {
			t.Fatalf("cfg %s: %d predictions for %d inputs", cfg.Key(), len(preds), len(inputs))
		}

		for i, in := range inputs {
			x4 := in
			if in.NDim() == 3 {
				x4 = tensor.FromSlice(in.Data(), 1, in.Dim(0), in.Dim(1), in.Dim(2))
			}
			// Golden reference: the training stack's eval-mode forward.
			want := m.Forward(x4, false)
			// Single-image runtime path.
			single, err := rt.Forward(x4)
			if err != nil {
				t.Fatalf("cfg %s input %d: %v", cfg.Key(), i, err)
			}
			nOut := want.Dim(1)
			for j := 0; j < nOut; j++ {
				wv := want.Data()[j]
				closeTo(t, cfg.Key()+": single vs training", single.Data()[j], wv, 1e-4)
				closeTo(t, cfg.Key()+": batched vs training", preds[i].Logits[j], wv, 1e-4)
				// Batched and single-image runtime paths run the same
				// kernels sample-independently; demand near round-off
				// agreement.
				closeTo(t, cfg.Key()+": batched vs single", preds[i].Logits[j], single.Data()[j], 1e-6)
			}
			wantClass := tensor.ArgMaxRows(want)[0]
			if preds[i].Class != wantClass {
				t.Fatalf("cfg %s input %d: batched class %d, training class %d",
					cfg.Key(), i, preds[i].Class, wantClass)
			}
		}
	}
}

// TestRunBatchRejectsBadInputs pins the error contract of the batched
// entry point.
func TestRunBatchRejectsBadInputs(t *testing.T) {
	cfg := resnet.Config{Channels: 5, Batch: 4, KernelSize: 3, Stride: 2, Padding: 1,
		PoolChoice: 0, InitialOutputFeature: 8, NumClasses: 2}
	_, container := exportModel(t, cfg, 13)
	rt, err := Load(bytes.NewReader(container))
	if err != nil {
		t.Fatal(err)
	}
	rng := tensor.NewRNG(2)
	ok := tensor.RandNormal(rng, 1, 5, 32, 32)

	if preds, err := rt.RunBatch(nil); err != nil || preds != nil {
		t.Fatalf("empty batch: preds %v err %v", preds, err)
	}
	if _, err := rt.RunBatch([]*tensor.Tensor{ok, nil}); err == nil {
		t.Fatal("nil input accepted")
	}
	// Wrong channel count.
	if _, err := rt.RunBatch([]*tensor.Tensor{tensor.RandNormal(rng, 1, 3, 32, 32)}); err == nil {
		t.Fatal("wrong channels accepted")
	}
	// Rank-4 with batch > 1.
	if _, err := rt.RunBatch([]*tensor.Tensor{tensor.RandNormal(rng, 1, 2, 5, 32, 32)}); err == nil {
		t.Fatal("multi-sample rank-4 input accepted")
	}
	// Rank-2.
	if _, err := rt.RunBatch([]*tensor.Tensor{tensor.RandNormal(rng, 1, 5, 32)}); err == nil {
		t.Fatal("rank-2 input accepted")
	}
}
