package infer

import (
	"bytes"
	"testing"

	"drainnas/internal/latmeter"
	"drainnas/internal/resnet"
)

// TestCostGraphMatchesDecompose pins the parity that makes plan-derived
// latency seeding trustworthy: walking a compiled container's fused ops
// must reproduce latmeter.Decompose's kernel graph for the same
// architecture — kernel for kernel, geometry for geometry. (Names differ
// only where the exporter is more specific, e.g. "layer2.0.down.conv" vs
// decomposition's "layer2.0.down", so they are compared normalized.)
func TestCostGraphMatchesDecompose(t *testing.T) {
	cfgs := []resnet.Config{
		{Channels: 3, Batch: 4, KernelSize: 3, Stride: 2, Padding: 1,
			PoolChoice: 0, InitialOutputFeature: 4, NumClasses: 2},
		{Channels: 7, Batch: 4, KernelSize: 7, Stride: 2, Padding: 3,
			PoolChoice: 1, KernelSizePool: 3, StridePool: 2, InitialOutputFeature: 8, NumClasses: 2},
		{Channels: 5, Batch: 4, KernelSize: 5, Stride: 1, Padding: 2,
			PoolChoice: 1, KernelSizePool: 2, StridePool: 2, InitialOutputFeature: 16, NumClasses: 4},
	}
	for i, cfg := range cfgs {
		_, container := exportModel(t, cfg, uint64(100+i))
		p, err := LoadPlan(bytes.NewReader(container))
		if err != nil {
			t.Fatalf("cfg %d: LoadPlan: %v", i, err)
		}
		for _, size := range []int{64, latmeter.DefaultInputSize} {
			want, err := latmeter.Decompose(cfg, size)
			if err != nil {
				t.Fatalf("cfg %d size %d: Decompose: %v", i, size, err)
			}
			got, err := p.CostGraph(size)
			if err != nil {
				t.Fatalf("cfg %d size %d: CostGraph: %v", i, size, err)
			}
			if got.InputSize != size {
				t.Fatalf("cfg %d: InputSize = %d, want %d", i, got.InputSize, size)
			}
			if len(got.Kernels) != len(want.Kernels) {
				t.Fatalf("cfg %d size %d: %d kernels, want %d\ngot:  %v\nwant: %v",
					i, size, len(got.Kernels), len(want.Kernels), got.Kernels, want.Kernels)
			}
			for j := range want.Kernels {
				g, w := got.Kernels[j], want.Kernels[j]
				g.Name, w.Name = "", ""
				if g != w {
					t.Errorf("cfg %d size %d kernel %d (%s): %+v, want %+v",
						i, size, j, want.Kernels[j].Name, g, w)
				}
			}
			// Identical geometry must give identical predicted latency — the
			// quantity the router actually seeds SJF with.
			for _, dev := range latmeter.Devices() {
				if g, w := dev.LatencyMS(got), dev.LatencyMS(want); g != w {
					t.Errorf("cfg %d size %d device %s: plan-predicted %.4fms, config-predicted %.4fms",
						i, size, dev.Name, g, w)
				}
			}
		}
	}
}

// TestCostGraphRejectsBadSize pins input validation and the collapsed-
// spatial guard.
func TestCostGraphRejectsBadSize(t *testing.T) {
	// An unpadded 2-wide max pool collapses a 1-pixel feature map to nothing.
	cfg := resnet.Config{Channels: 5, Batch: 4, KernelSize: 5, Stride: 1, Padding: 2,
		PoolChoice: 1, KernelSizePool: 2, StridePool: 2, InitialOutputFeature: 16, NumClasses: 4}
	_, container := exportModel(t, cfg, 9)
	p, err := LoadPlan(bytes.NewReader(container))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := p.CostGraph(0); err == nil {
		t.Fatal("CostGraph(0) succeeded")
	}
	if _, err := p.CostGraph(-3); err == nil {
		t.Fatal("CostGraph(-3) succeeded")
	}
	if _, err := p.CostGraph(1); err == nil {
		t.Fatal("CostGraph(1) succeeded on a collapsing geometry")
	}
}
