package infer

import (
	"bytes"
	"fmt"
	"math"
	"strings"
	"sync"
	"testing"

	"drainnas/internal/nas"
	"drainnas/internal/onnxsize"
	"drainnas/internal/parallel"
	"drainnas/internal/resnet"
	"drainnas/internal/tensor"
)

// TestThreeWayParityRandomConfigs draws stem configurations from the paper's
// search space and checks all three execution paths against each other at
// 1e-4: the training stack's eval-mode forward (golden), the per-call graph
// interpreter (the pre-compilation runtime kept as oracle), and the compiled
// plan executed through a session. Any BN-folding or fusion mistake in
// Compile shows up here as a compiled-vs-interpreted split.
func TestThreeWayParityRandomConfigs(t *testing.T) {
	space := nas.PaperSpace()
	rng := tensor.NewRNG(1234)
	combos := []nas.InputCombo{{Channels: 5, Batch: 4}, {Channels: 7, Batch: 4}}
	const draws = 4
	for d := 0; d < draws; d++ {
		cfg := space.RandomConfig(combos[d%len(combos)], rng)
		// The stem axes (kernel/stride/padding/pool) are what Compile has to
		// get right; shrink the backbone width so each draw stays fast.
		cfg.InitialOutputFeature = 8
		t.Run(cfg.Key(), func(t *testing.T) {
			m, container := exportModel(t, cfg, 100+uint64(d))
			rt, err := Load(bytes.NewReader(container))
			if err != nil {
				t.Fatal(err)
			}
			sess := rt.Plan().NewSession()

			x := tensor.RandNormal(tensor.NewRNG(uint64(7+d)), 1, 2, cfg.Channels, 32, 32)
			want := m.Forward(x, false)
			interp, err := rt.forwardInterpreted(x)
			if err != nil {
				t.Fatalf("interpreted: %v", err)
			}
			compiled, err := sess.Forward(x)
			if err != nil {
				t.Fatalf("compiled: %v", err)
			}
			if !compiled.SameShape(want) || !interp.SameShape(want) {
				t.Fatalf("shapes: compiled %v interp %v training %v",
					compiled.Shape(), interp.Shape(), want.Shape())
			}
			for i, wv := range want.Data() {
				closeTo(t, "compiled vs training", compiled.Data()[i], wv, 1e-4)
				closeTo(t, "interpreted vs training", interp.Data()[i], wv, 1e-4)
				closeTo(t, "compiled vs interpreted", compiled.Data()[i], interp.Data()[i], 1e-4)
			}
		})
	}
}

// TestPlanFusesOps pins the lowering arithmetic: every BatchNormalization
// folds into its conv and every ReLU (they all trail a Conv or an Add in the
// exporter's graphs) fuses into an epilogue, so the op count is exactly the
// node count minus those two populations.
func TestPlanFusesOps(t *testing.T) {
	cfg := resnet.Config{
		Channels: 5, Batch: 4, KernelSize: 7, Stride: 2, Padding: 3,
		PoolChoice: 1, KernelSizePool: 3, StridePool: 2,
		InitialOutputFeature: 8, NumClasses: 2,
	}
	_, container := exportModel(t, cfg, 3)
	dec, err := onnxsize.Decode(bytes.NewReader(container))
	if err != nil {
		t.Fatal(err)
	}
	plan, err := Compile(dec)
	if err != nil {
		t.Fatal(err)
	}
	bn, relu := 0, 0
	for _, n := range dec.Graph.Nodes {
		switch n.OpType {
		case "BatchNormalization":
			bn++
		case "Relu":
			relu++
		}
	}
	if bn == 0 || relu == 0 {
		t.Fatalf("degenerate graph: %d BN, %d ReLU nodes", bn, relu)
	}
	want := len(dec.Graph.Nodes) - bn - relu
	if plan.OpCount() != want {
		t.Fatalf("plan has %d ops; %d nodes - %d BN - %d ReLU = %d",
			plan.OpCount(), len(dec.Graph.Nodes), bn, relu, want)
	}
}

// planPadDecoded hand-builds a minimal decoded container whose MaxPool
// carries an explicit pad attribute: Conv(1x1) -> BN -> ReLU -> MaxPool(k3,
// s2, pad) -> GAP -> Gemm. The resnet exporter always pads k>=3 pools by 1,
// so a pad-0 k3 pool only exists off the exporter path — exactly the case
// the old runtime got wrong by guessing pad from the kernel size.
func planPadDecoded(pad int, withPadAttr bool) *onnxsize.Decoded {
	poolAttrs := map[string]int{"kernel": 3, "stride": 2}
	if withPadAttr {
		poolAttrs["pad"] = pad
	}
	g := onnxsize.GraphSpec{
		Name: "padprobe",
		Nodes: []onnxsize.NodeSpec{
			{OpType: "Conv", Name: "conv1", Attrs: map[string]int{"kernel": 1, "stride": 1, "pad": 0}},
			{OpType: "BatchNormalization", Name: "bn1", Attrs: map[string]int{}},
			{OpType: "Relu", Name: "relu1", Attrs: map[string]int{}},
			{OpType: "MaxPool", Name: "pool", Attrs: poolAttrs},
			{OpType: "GlobalAveragePool", Name: "gap", Attrs: map[string]int{}},
			{OpType: "Gemm", Name: "fc", Attrs: map[string]int{}},
		},
		Initializers: []onnxsize.InitializerSpec{
			{Name: "conv1.weight", Dims: []int{2, 1, 1, 1}},
			{Name: "bn1.gamma", Dims: []int{2}},
			{Name: "bn1.beta", Dims: []int{2}},
			{Name: "bn1.running_mean", Dims: []int{2}},
			{Name: "bn1.running_var", Dims: []int{2}},
			{Name: "fc.weight", Dims: []int{2, 2}},
			{Name: "fc.bias", Dims: []int{2}},
		},
	}
	return &onnxsize.Decoded{
		Graph: g,
		Weights: map[string][]float32{
			"conv1.weight":     {1.5, -0.5},
			"bn1.gamma":        {1, 1},
			"bn1.beta":         {0, 0.25},
			"bn1.running_mean": {0.1, -0.1},
			"bn1.running_var":  {1, 1},
			"fc.weight":        {1, 0, 0.5, -1},
			"fc.bias":          {0.125, -0.25},
		},
	}
}

// TestPoolPadZeroHonored is the regression test for the MaxPool padding bug:
// the runtime used to guess pad=1 whenever kernel >= 3, silently reshaping
// (and mis-valuing) any container whose pool really has pad 0. The compiled
// result must match the same pipeline built from raw tensor ops with pad 0.
func TestPoolPadZeroHonored(t *testing.T) {
	dec := planPadDecoded(0, true)
	plan, err := Compile(dec)
	if err != nil {
		t.Fatal(err)
	}
	// 5x5 input: pad 0 pools to 2x2, the old pad-1 guess would give 3x3 and
	// pull zero-padding into the maxima.
	x := tensor.RandNormal(tensor.NewRNG(5), 1, 1, 1, 5, 5)
	got, err := plan.Forward(x)
	if err != nil {
		t.Fatal(err)
	}

	// Reference from raw tensor ops, fold-free: conv -> BN by hand -> relu
	// -> pool(pad 0) -> gap -> fc.
	conv := tensor.Conv2D(x, tensor.FromSlice(dec.Weights["conv1.weight"], 2, 1, 1, 1), nil, 1, 0)
	g, b := dec.Weights["bn1.gamma"], dec.Weights["bn1.beta"]
	mean, variance := dec.Weights["bn1.running_mean"], dec.Weights["bn1.running_var"]
	bn := tensor.New(conv.Shape()...)
	plane := conv.Dim(2) * conv.Dim(3)
	for ch := 0; ch < 2; ch++ {
		inv := 1 / float32(math.Sqrt(float64(variance[ch])+1e-5))
		for i := 0; i < plane; i++ {
			bn.Data()[ch*plane+i] = (conv.Data()[ch*plane+i]-mean[ch])*inv*g[ch] + b[ch]
		}
	}
	pooled, _ := tensor.MaxPool2D(tensor.ReLU(bn), 3, 2, 0)
	gap := tensor.GlobalAvgPool2D(pooled)
	fcW := tensor.FromSlice(dec.Weights["fc.weight"], 2, 2)
	want := tensor.MatMul(gap, tensor.Transpose2D(fcW))
	for j := 0; j < 2; j++ {
		want.Data()[j] += dec.Weights["fc.bias"][j]
	}

	if !got.SameShape(want) {
		t.Fatalf("compiled shape %v, reference %v", got.Shape(), want.Shape())
	}
	for i := range want.Data() {
		closeTo(t, fmt.Sprintf("logit %d", i), got.Data()[i], want.Data()[i], 1e-5)
	}
}

// TestCompileRejectsMissingPoolPad: a container whose MaxPool lacks the pad
// attribute predates the explicit-padding exporter; guessing is what caused
// the original bug, so Compile must refuse outright. The interpreter oracle
// holds the same line.
func TestCompileRejectsMissingPoolPad(t *testing.T) {
	dec := planPadDecoded(0, false)
	if _, err := Compile(dec); err == nil || !strings.Contains(err.Error(), "pad") {
		t.Fatalf("Compile error = %v, want missing-pad rejection", err)
	}
	rt := &Runtime{dec: dec, plan: &Plan{inC: 1}}
	x := tensor.RandNormal(tensor.NewRNG(5), 1, 1, 1, 5, 5)
	if _, err := rt.forwardInterpreted(x); err == nil || !strings.Contains(err.Error(), "pad") {
		t.Fatalf("interpreter error = %v, want missing-pad rejection", err)
	}
}

// TestPlanSharedAcrossSessionsRace hammers one shared Plan from many
// goroutines — per-goroutine sessions, the pooled Plan.Forward wrapper and
// RunBatch all at once — and checks every result against the serial
// reference. Run with -race this is the concurrency contract of the API:
// Plan immutable and shareable, Session single-goroutine.
func TestPlanSharedAcrossSessionsRace(t *testing.T) {
	cfg := resnet.Config{
		Channels: 3, Batch: 4, KernelSize: 3, Stride: 2, Padding: 1,
		PoolChoice: 1, KernelSizePool: 3, StridePool: 2,
		InitialOutputFeature: 4, NumClasses: 2,
	}
	_, container := exportModel(t, cfg, 17)
	plan, err := LoadPlan(bytes.NewReader(container))
	if err != nil {
		t.Fatal(err)
	}
	// Two spatial sizes so concurrent sessions juggle multiple arenas.
	xa := tensor.RandNormal(tensor.NewRNG(1), 1, 1, 3, 16, 16)
	xb := tensor.RandNormal(tensor.NewRNG(2), 1, 1, 3, 24, 24)
	refA, err := plan.Forward(xa)
	if err != nil {
		t.Fatal(err)
	}
	refB, err := plan.Forward(xb)
	if err != nil {
		t.Fatal(err)
	}

	const workers, iters = 8, 20
	var wg sync.WaitGroup
	errc := make(chan error, 3*workers)
	check := func(kind string, got []float32, want *tensor.Tensor) error {
		for i, wv := range want.Data() {
			if d := math.Abs(float64(got[i] - wv)); d > 1e-6 {
				return fmt.Errorf("%s: logit %d drifted by %g under concurrency", kind, i, d)
			}
		}
		return nil
	}
	for w := 0; w < workers; w++ {
		// Dedicated sessions, alternating shapes.
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			sess := plan.NewSession()
			for i := 0; i < iters; i++ {
				x, ref := xa, refA
				if (w+i)%2 == 1 {
					x, ref = xb, refB
				}
				out, err := sess.Forward(x)
				if err != nil {
					errc <- err
					return
				}
				if err := check("session", out.Data(), ref); err != nil {
					errc <- err
					return
				}
			}
		}(w)
		// Pooled wrapper path.
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				out, err := plan.Forward(xa)
				if err != nil {
					errc <- err
					return
				}
				if err := check("plan.Forward", out.Data(), refA); err != nil {
					errc <- err
					return
				}
			}
		}()
		// Batched path with mixed sizes.
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < iters/2; i++ {
				preds, err := plan.RunBatch([]*tensor.Tensor{xa, xb, xa})
				if err != nil {
					errc <- err
					return
				}
				for bi, ref := range []*tensor.Tensor{refA, refB, refA} {
					if err := check("RunBatch", preds[bi].Logits, ref); err != nil {
						errc <- err
						return
					}
				}
			}
		}()
	}
	wg.Wait()
	close(errc)
	for err := range errc {
		t.Fatal(err)
	}
}

// TestSessionSteadyStateZeroAlloc is the arena acceptance check: once a
// session has seen a shape, further forwards of that shape allocate nothing.
// Workers are pinned to 1 so goroutine spawns in the conv driver don't count
// against the arena (the claim under test is about tensor buffers).
func TestSessionSteadyStateZeroAlloc(t *testing.T) {
	if raceEnabled {
		t.Skip("race detector instruments allocations; alloc counts are not meaningful")
	}
	prev := parallel.DefaultWorkers
	parallel.DefaultWorkers = 1
	defer func() { parallel.DefaultWorkers = prev }()

	cfg := resnet.Config{
		Channels: 3, Batch: 4, KernelSize: 3, Stride: 2, Padding: 1,
		PoolChoice: 1, KernelSizePool: 3, StridePool: 2,
		InitialOutputFeature: 4, NumClasses: 2,
	}
	_, container := exportModel(t, cfg, 29)
	plan, err := LoadPlan(bytes.NewReader(container))
	if err != nil {
		t.Fatal(err)
	}
	sess := plan.NewSession()
	x := tensor.RandNormal(tensor.NewRNG(3), 1, 1, 3, 16, 16)
	if _, err := sess.Forward(x); err != nil { // builds the arena
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(20, func() {
		if _, err := sess.Forward(x); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Fatalf("steady-state Forward allocates %.1f objects/op, want 0", allocs)
	}
}

// TestSessionArenaReusedAcrossShapes checks the arena map: two shapes mean
// two arenas, re-seeing a shape reuses its arena (the hit/miss counters are
// observable via metrics but the behavioral check here is value identity of
// the returned logits buffer, which is arena-owned).
func TestSessionArenaReusedAcrossShapes(t *testing.T) {
	cfg := resnet.Config{
		Channels: 3, Batch: 4, KernelSize: 3, Stride: 2, Padding: 1,
		PoolChoice: 0, InitialOutputFeature: 4, NumClasses: 2,
	}
	_, container := exportModel(t, cfg, 31)
	plan, err := LoadPlan(bytes.NewReader(container))
	if err != nil {
		t.Fatal(err)
	}
	sess := plan.NewSession()
	xa := tensor.RandNormal(tensor.NewRNG(1), 1, 1, 3, 16, 16)
	xb := tensor.RandNormal(tensor.NewRNG(2), 1, 1, 3, 20, 20)

	outA1, err := sess.Forward(xa)
	if err != nil {
		t.Fatal(err)
	}
	dataA1 := &outA1.Data()[0]
	if _, err := sess.Forward(xb); err != nil {
		t.Fatal(err)
	}
	outA2, err := sess.Forward(xa)
	if err != nil {
		t.Fatal(err)
	}
	if &outA2.Data()[0] != dataA1 {
		t.Fatal("re-seen shape did not reuse its arena buffer")
	}
}
