package infer

import (
	"fmt"

	"drainnas/internal/latmeter"
	"drainnas/internal/tensor"
)

// CostGraph lowers the compiled plan into latmeter's fused kernel graph for
// a batch-1 forward over an inputSize×inputSize image. This is how a serving
// tier predicts a model's latency when all it holds is the compiled
// container — the resnet.Config that latmeter.Decompose wants is not
// retained in a .dnnx file, but the plan's fused ops carry the same geometry
// the cost model needs. The router uses this to seed its shortest-job-first
// latency estimates per deployed model at startup.
//
// The kernel sequence matches latmeter.Decompose kernel-for-kernel on
// exporter-produced containers (the parity test pins it), because plan
// compilation fuses exactly the chains decomposition assumes: Conv+BN+ReLU
// into one kernel, Add+ReLU into one join.
func (p *Plan) CostGraph(inputSize int) (latmeter.Graph, error) {
	if inputSize <= 0 {
		return latmeter.Graph{}, fmt.Errorf("infer: cost graph input size %d", inputSize)
	}
	side := make([]int, p.numVals)
	chans := make([]int, p.numVals)
	for v := range side {
		side[v], chans[v] = -1, -1
	}
	side[0], chans[0] = inputSize, p.inC

	ks := make([]latmeter.Kernel, 0, len(p.ops))
	for _, op := range p.ops {
		hw, ch := side[op.in], chans[op.in]
		if hw <= 0 {
			return latmeter.Graph{}, fmt.Errorf("infer: op %s reads a value with unresolved spatial size", op.name)
		}
		switch op.kind {
		case opConv:
			kh, kw := op.conv.KernelSize()
			if kh != kw {
				return latmeter.Graph{}, fmt.Errorf("infer: op %s has non-square kernel %dx%d, cost model wants square", op.name, kh, kw)
			}
			oh, ow := op.conv.OutSize(hw, hw)
			if oh <= 0 || oh != ow {
				return latmeter.Graph{}, fmt.Errorf("infer: op %s collapses a %d input to %dx%d", op.name, hw, oh, ow)
			}
			typ := latmeter.KConvBN
			if op.conv.HasReLU() {
				typ = latmeter.KConvBNReLU
			}
			ks = append(ks, latmeter.Kernel{
				Type: typ, Name: op.name,
				InC: op.conv.InChannels(), OutC: op.conv.OutChannels(),
				HW: hw, OutHW: oh, K: kh, S: op.conv.Stride(),
			})
			side[op.out], chans[op.out] = oh, op.conv.OutChannels()

		case opRelu:
			// A standalone ReLU only arises when the exporter's fusion chains
			// were broken; it is elementwise and contributes no kernel of its
			// own in the cost model.
			side[op.out], chans[op.out] = hw, ch

		case opMaxPool:
			out := tensor.ConvOut(hw, op.kernel, op.stride, op.pad)
			if out <= 0 {
				return latmeter.Graph{}, fmt.Errorf("infer: op %s collapses a %d input", op.name, hw)
			}
			ks = append(ks, latmeter.Kernel{
				Type: latmeter.KMaxPool, Name: op.name,
				InC: ch, OutC: ch, HW: hw, OutHW: out, K: op.kernel, S: op.stride,
			})
			side[op.out], chans[op.out] = out, ch

		case opAdd:
			ks = append(ks, latmeter.Kernel{
				Type: latmeter.KAddReLU, Name: op.name,
				InC: ch, OutC: ch, HW: hw, OutHW: hw,
			})
			side[op.out], chans[op.out] = hw, ch

		case opGlobalAvgPool:
			ks = append(ks, latmeter.Kernel{
				Type: latmeter.KGlobalAvgPool, Name: op.name,
				InC: ch, OutC: ch, HW: hw, OutHW: 1,
			})
			side[op.out], chans[op.out] = 1, ch

		case opFC:
			ks = append(ks, latmeter.Kernel{
				Type: latmeter.KFC, Name: op.name,
				InC: op.conv.InChannels(), OutC: op.conv.OutChannels(),
				HW: 1, OutHW: 1,
			})
			side[op.out], chans[op.out] = 1, op.conv.OutChannels()

		default:
			return latmeter.Graph{}, fmt.Errorf("infer: op %s has no cost-model kernel", op.name)
		}
	}
	g := latmeter.Graph{Kernels: ks, InputSize: inputSize}
	if p.Precision() == PrecisionInt8 {
		g.CostScale = latmeter.Int8CostScale
	}
	return g, nil
}
