package infer

import (
	"fmt"
	"math"
	"strings"

	"drainnas/internal/onnxsize"
	"drainnas/internal/tensor"
)

// This file is the original per-call graph interpreter, kept as the
// differential oracle for the compiled plan (the three-way parity tests) and
// as the "before" baseline the infer benchmarks measure the compiler
// against. It re-derives residual topology from node names on every call,
// runs BatchNorm as a separate pass and allocates a fresh tensor per op —
// exactly the costs Compile removes.

// forwardInterpreted executes the graph on an (N, C, H, W) input by walking
// the node list, returning the (N, classes) logits.
func (rt *Runtime) forwardInterpreted(x *tensor.Tensor) (*tensor.Tensor, error) {
	if x.NDim() != 4 {
		return nil, fmt.Errorf("infer: input must be (N,C,H,W), got %v", x.Shape())
	}
	if x.Dim(1) != rt.plan.inC {
		return nil, fmt.Errorf("infer: input has %d channels, model wants %d", x.Dim(1), rt.plan.inC)
	}
	cur := x
	var blockIn *tensor.Tensor // input of the residual block in flight
	var mainPath *tensor.Tensor
	var shortcut *tensor.Tensor
	var err error

	for _, node := range rt.dec.Graph.Nodes {
		switch node.OpType {
		case "Conv":
			src := cur
			if strings.HasSuffix(node.Name, ".conv1") && strings.HasPrefix(node.Name, "layer") {
				// First conv of a residual block: remember the block input.
				blockIn = cur
				shortcut = nil
			}
			if strings.Contains(node.Name, ".down.") {
				// Projection shortcut operates on the block input; stash the
				// main path result first.
				mainPath = cur
				src = blockIn
			}
			cur, err = rt.conv(node, src)
			if err != nil {
				return nil, err
			}
		case "BatchNormalization":
			cur, err = rt.batchNorm(node, cur)
			if err != nil {
				return nil, err
			}
			if strings.Contains(node.Name, ".down.") {
				shortcut = cur
				cur = mainPath
			}
		case "Relu":
			cur = tensor.ReLU(cur)
		case "MaxPool":
			k := node.Attrs["kernel"]
			s := node.Attrs["stride"]
			pad, ok := node.Attrs["pad"]
			if !ok {
				return nil, fmt.Errorf("infer: MaxPool %s has no pad attribute", node.Name)
			}
			if k <= 0 || s <= 0 {
				return nil, fmt.Errorf("infer: MaxPool %s with kernel=%d stride=%d", node.Name, k, s)
			}
			cur, _ = tensor.MaxPool2D(cur, k, s, pad)
		case "Add":
			sc := shortcut
			if sc == nil {
				sc = blockIn
			}
			if sc == nil {
				return nil, fmt.Errorf("infer: Add %s without a block input", node.Name)
			}
			if !cur.SameShape(sc) {
				return nil, fmt.Errorf("infer: Add %s shape mismatch %v vs %v", node.Name, cur.Shape(), sc.Shape())
			}
			cur = tensor.Add(cur, sc)
			blockIn, shortcut, mainPath = nil, nil, nil
		case "GlobalAveragePool":
			cur = tensor.GlobalAvgPool2D(cur)
		case "Gemm":
			cur, err = rt.gemm(node, cur)
			if err != nil {
				return nil, err
			}
		default:
			return nil, fmt.Errorf("infer: unsupported op %q (node %s)", node.OpType, node.Name)
		}
	}
	if cur.NDim() != 2 {
		return nil, fmt.Errorf("infer: graph ended with shape %v, want (N, classes)", cur.Shape())
	}
	return cur, nil
}

func (rt *Runtime) initializerDims(name string) []int {
	for _, init := range rt.dec.Graph.Initializers {
		if init.Name == name {
			return init.Dims
		}
	}
	return nil
}

func (rt *Runtime) tensorOf(name string, wantLen int) ([]float32, error) {
	v, ok := rt.dec.Weights[name]
	if !ok {
		return nil, fmt.Errorf("infer: missing initializer %s", name)
	}
	if wantLen > 0 && len(v) != wantLen {
		return nil, fmt.Errorf("infer: initializer %s has %d values, want %d", name, len(v), wantLen)
	}
	return v, nil
}

func (rt *Runtime) conv(node onnxsize.NodeSpec, x *tensor.Tensor) (*tensor.Tensor, error) {
	dims := rt.initializerDims(node.Name + ".weight")
	if len(dims) != 4 {
		return nil, fmt.Errorf("infer: conv %s weight dims %v", node.Name, dims)
	}
	w, err := rt.tensorOf(node.Name+".weight", dims[0]*dims[1]*dims[2]*dims[3])
	if err != nil {
		return nil, err
	}
	k, s, p := node.Attrs["kernel"], node.Attrs["stride"], node.Attrs["pad"]
	if k != dims[2] || k != dims[3] {
		return nil, fmt.Errorf("infer: conv %s kernel attr %d vs weight dims %v", node.Name, k, dims)
	}
	if s <= 0 {
		return nil, fmt.Errorf("infer: conv %s stride %d", node.Name, s)
	}
	if x.Dim(1) != dims[1] {
		return nil, fmt.Errorf("infer: conv %s input channels %d, weight wants %d", node.Name, x.Dim(1), dims[1])
	}
	weight := tensor.FromSlice(w, dims...)
	return tensor.Conv2D(x, weight, nil, s, p), nil
}

func (rt *Runtime) batchNorm(node onnxsize.NodeSpec, x *tensor.Tensor) (*tensor.Tensor, error) {
	c := x.Dim(1)
	gamma, err := rt.tensorOf(node.Name+".gamma", c)
	if err != nil {
		return nil, err
	}
	beta, err := rt.tensorOf(node.Name+".beta", c)
	if err != nil {
		return nil, err
	}
	mean, err := rt.tensorOf(node.Name+".running_mean", c)
	if err != nil {
		return nil, err
	}
	variance, err := rt.tensorOf(node.Name+".running_var", c)
	if err != nil {
		return nil, err
	}
	eps := float64(node.Attrs["epsilon_e9"]) * 1e-9
	if eps <= 0 {
		eps = 1e-5
	}
	n, _, h, w := x.Dim(0), x.Dim(1), x.Dim(2), x.Dim(3)
	plane := h * w
	out := tensor.New(n, c, h, w)
	for ch := 0; ch < c; ch++ {
		invSD := 1.0 / math.Sqrt(float64(variance[ch])+eps)
		scale := float32(float64(gamma[ch]) * invSD)
		shift := float32(float64(beta[ch]) - float64(gamma[ch])*float64(mean[ch])*invSD)
		for s := 0; s < n; s++ {
			src := x.Data()[(s*c+ch)*plane : (s*c+ch+1)*plane]
			dst := out.Data()[(s*c+ch)*plane : (s*c+ch+1)*plane]
			for i, v := range src {
				dst[i] = v*scale + shift
			}
		}
	}
	return out, nil
}

func (rt *Runtime) gemm(node onnxsize.NodeSpec, x *tensor.Tensor) (*tensor.Tensor, error) {
	dims := rt.initializerDims(node.Name + ".weight")
	if len(dims) != 2 {
		return nil, fmt.Errorf("infer: gemm %s weight dims %v", node.Name, dims)
	}
	out, in := dims[0], dims[1]
	w, err := rt.tensorOf(node.Name+".weight", out*in)
	if err != nil {
		return nil, err
	}
	b, err := rt.tensorOf(node.Name+".bias", out)
	if err != nil {
		return nil, err
	}
	if x.NDim() != 2 || x.Dim(1) != in {
		return nil, fmt.Errorf("infer: gemm %s input %v, want (N,%d)", node.Name, x.Shape(), in)
	}
	weight := tensor.FromSlice(w, out, in)
	res := tensor.MatMul(x, tensor.Transpose2D(weight))
	n := x.Dim(0)
	for r := 0; r < n; r++ {
		row := res.Data()[r*out : (r+1)*out]
		for j := range row {
			row[j] += b[j]
		}
	}
	return res, nil
}
