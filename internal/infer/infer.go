package infer

import (
	"fmt"
	"io"

	"drainnas/internal/onnxsize"
	"drainnas/internal/tensor"
)

// Runtime executes one loaded model. It is a thin compatibility wrapper over
// a compiled Plan: Load/FromDecoded compile the container eagerly, and the
// Forward/Classify/RunBatch methods delegate to the plan's pooled sessions.
// New code should use Compile/LoadPlan and Plan/Session directly — see the
// package documentation for the migration sketch.
type Runtime struct {
	dec  *onnxsize.Decoded
	plan *Plan
}

// Load parses a container and compiles it for execution.
func Load(r io.Reader) (*Runtime, error) {
	dec, err := onnxsize.Decode(r)
	if err != nil {
		return nil, fmt.Errorf("infer: %w", err)
	}
	return FromDecoded(dec)
}

// FromDecoded compiles an already-decoded container.
func FromDecoded(dec *onnxsize.Decoded) (*Runtime, error) {
	plan, err := Compile(dec)
	if err != nil {
		return nil, err
	}
	return &Runtime{dec: dec, plan: plan}, nil
}

// Plan returns the compiled execution plan backing this runtime.
func (rt *Runtime) Plan() *Plan { return rt.plan }

// InputChannels returns the channel count the model expects.
func (rt *Runtime) InputChannels() int { return rt.plan.inC }

// GraphName returns the container's graph name.
func (rt *Runtime) GraphName() string { return rt.plan.name }

// Forward executes the model on an (N, C, H, W) input, returning the
// (N, classes) logits.
//
// Compatibility wrapper: it runs the compiled plan through a pooled session
// and copies the logits out of the session arena. Callers on the latency
// path should hold a Plan and a per-goroutine Session instead.
func (rt *Runtime) Forward(x *tensor.Tensor) (*tensor.Tensor, error) {
	return rt.plan.Forward(x)
}

// Classify runs Forward and returns the argmax class per sample.
//
// Compatibility wrapper over Plan.Classify.
func (rt *Runtime) Classify(x *tensor.Tensor) ([]int, error) {
	return rt.plan.Classify(x)
}
