package infer

import (
	"fmt"

	"drainnas/internal/geodata"
	"drainnas/internal/metrics"
	"drainnas/internal/tensor"
)

// Post-training quantization pass: Plan.Quantize derives an int8 form of a
// compiled float plan. Weights quantize per output channel from the
// BN-folded values the PackedConvs already hold; activation scales come from
// calibration — running representative inputs through the float plan and
// recording each arena value's max-abs. The quantized plan is a *Plan like
// any other (same Session machinery, same CostGraph), just with integer op
// payloads and a latency cost scale.

// Quantize returns the int8 form of the plan, calibrating activation ranges
// on the given (N, C, H, W) sample batches. The receiver is unchanged and
// the two plans share no mutable state. Requirements: at least one
// calibration batch with the plan's channel count, and the exporter's head
// shape — a global pool (where dequantization happens) optionally followed
// by the classifier Gemm, which stays fp32. Everything Compile accepts
// today satisfies the topology requirement.
func (p *Plan) Quantize(calib []*tensor.Tensor) (*Plan, error) {
	if p.Precision() != PrecisionFP32 {
		return nil, fmt.Errorf("infer: plan %s is already %s", p.name, p.precision)
	}
	if len(calib) == 0 {
		return nil, fmt.Errorf("infer: quantization needs at least one calibration batch")
	}

	maxAbs := make([]float32, p.numVals)
	for i, x := range calib {
		if x == nil || x.NDim() != 4 {
			return nil, fmt.Errorf("infer: calibration batch %d must be (N,C,H,W)", i)
		}
		if x.Dim(1) != p.inC {
			return nil, fmt.Errorf("infer: calibration batch %d has %d channels, model wants %d", i, x.Dim(1), p.inC)
		}
		if err := p.runRecording(x, maxAbs); err != nil {
			return nil, err
		}
	}

	scale := make([]float32, p.numVals)
	for v := range scale {
		scale[v] = tensor.ActScale(maxAbs[v])
	}
	// ReLU and MaxPool pass s8 values through untouched, so their outputs
	// keep the input's scale exactly rather than a separately observed one.
	for idx := range p.ops {
		op := &p.ops[idx]
		if op.kind == opRelu || op.kind == opMaxPool {
			scale[op.out] = scale[op.in]
		}
	}

	q := &Plan{
		name: p.name, inC: p.inC, classes: p.classes,
		numVals: p.numVals, outVal: p.outVal,
		lastUse:   append([]int(nil), p.lastUse...),
		ops:       make([]planOp, len(p.ops)),
		precision: PrecisionInt8,
		inScale:   scale[0],
	}
	// The backbone quantizes; the head stays float. The global pool
	// dequantizes its int32 plane sums directly (no extra rounding step) and
	// the classifier FC runs as the float PackedConv it already is — it is a
	// vanishing fraction of the compute, and keeping it fp32 removes the two
	// quantization stages that sit right on the logits.
	floatVal := make([]bool, p.numVals)
	for idx, op := range p.ops {
		if op.in2 >= 0 && floatVal[op.in2] {
			return nil, fmt.Errorf("infer: op %s mixes float and int8 operands", op.name)
		}
		nop := op
		switch op.kind {
		case opConv:
			if floatVal[op.in] {
				return nil, fmt.Errorf("infer: conv %s after the dequantizing head is unsupported in int8 plans", op.name)
			}
			if op.out == p.outVal {
				return nil, fmt.Errorf("infer: terminal conv %s cannot dequantize", op.name)
			}
			nop.qconv = tensor.NewQuantizedConv(
				op.conv.Weights(), op.conv.Bias(),
				op.conv.Stride(), op.conv.Pad(), op.conv.HasReLU(),
				scale[op.in], scale[op.out])
		case opFC:
			if op.out != p.outVal {
				return nil, fmt.Errorf("infer: non-terminal FC %s unsupported in int8 plans", op.name)
			}
			if !floatVal[op.in] {
				return nil, fmt.Errorf("infer: FC %s reads an int8 value; expected the dequantized pool output", op.name)
			}
		case opAdd:
			nop.ra = scale[op.in] / scale[op.out]
			nop.rb = scale[op.in2] / scale[op.out]
		case opGlobalAvgPool:
			if floatVal[op.in] {
				return nil, fmt.Errorf("infer: pool %s after the dequantizing head is unsupported in int8 plans", op.name)
			}
			// Dequantizing op: ratio carries the input activation scale.
			nop.ratio = scale[op.in]
			floatVal[op.out] = true
		default:
			if floatVal[op.in] {
				return nil, fmt.Errorf("infer: op %s after the dequantizing head is unsupported in int8 plans", op.name)
			}
		}
		if op.kind == opFC {
			floatVal[op.out] = true
		}
		q.ops[idx] = nop
	}
	metrics.Infer.PlanCompiled()
	return q, nil
}

// runRecording executes one float forward with per-value allocation (no
// arena recycling — every intermediate must stay inspectable) and folds each
// value's max-abs into maxAbs.
func (p *Plan) runRecording(x *tensor.Tensor, maxAbs []float32) error {
	record := func(v int, data []float32) {
		if m := tensor.MaxAbs(data); m > maxAbs[v] {
			maxAbs[v] = m
		}
	}
	record(0, x.Data())
	n := x.Dim(0)
	vals := make([]*tensor.Tensor, p.numVals)
	vals[0] = x
	for idx := range p.ops {
		op := &p.ops[idx]
		in := vals[op.in]
		var out *tensor.Tensor
		switch op.kind {
		case opConv:
			oh, ow := op.conv.OutSize(in.Dim(2), in.Dim(3))
			if oh <= 0 || ow <= 0 {
				return fmt.Errorf("infer: calibration input %dx%d too small for conv %s", x.Dim(2), x.Dim(3), op.name)
			}
			out = tensor.New(n, op.conv.OutChannels(), oh, ow)
			op.conv.ForwardInto(out, in)
		case opRelu:
			out = tensor.New(in.Shape()...)
			tensor.ReLUInto(out, in)
		case opMaxPool:
			oh := tensor.ConvOut(in.Dim(2), op.kernel, op.stride, op.pad)
			ow := tensor.ConvOut(in.Dim(3), op.kernel, op.stride, op.pad)
			if oh <= 0 || ow <= 0 {
				return fmt.Errorf("infer: calibration input %dx%d too small for pool %s", x.Dim(2), x.Dim(3), op.name)
			}
			out = tensor.New(n, in.Dim(1), oh, ow)
			tensor.MaxPool2DInto(out, in, op.kernel, op.stride, op.pad)
		case opAdd:
			in2 := vals[op.in2]
			out = tensor.New(in.Shape()...)
			if op.relu {
				tensor.AddReLUInto(out, in, in2)
			} else {
				tensor.AddInto(out, in, in2)
			}
		case opGlobalAvgPool:
			out = tensor.New(n, in.Dim(1))
			tensor.GlobalAvgPool2DInto(out, in)
		case opFC:
			out = tensor.New(n, op.conv.OutChannels())
			fcIn := tensor.FromSlice(in.Data(), n, in.Dim(1), 1, 1)
			fcOut := tensor.FromSlice(out.Data(), n, op.conv.OutChannels(), 1, 1)
			op.conv.ForwardInto(fcOut, fcIn)
		}
		vals[op.out] = out
		record(op.out, out.Data())
	}
	return nil
}

// SyntheticCalibration builds a deterministic calibration set for a model
// with the given input geometry. For the paper's channel counts it draws
// a miniature geodata corpus (one chip per class per study region, the
// terrain statistics real inputs have); other channel counts fall back to
// unit-normal noise.
func SyntheticCalibration(channels, size int, seed uint64) []*tensor.Tensor {
	if channels == 5 || channels == 7 {
		c := geodata.GenerateCorpus(geodata.CorpusOptions{ChipSize: size, Scale: 1 << 20, Seed: seed})
		x, _ := c.Tensors(channels)
		return []*tensor.Tensor{x}
	}
	rng := tensor.NewRNG(seed)
	batches := make([]*tensor.Tensor, 0, 4)
	for i := 0; i < 4; i++ {
		batches = append(batches, tensor.RandNormal(rng, 1.0, 2, channels, size, size))
	}
	return batches
}

// QuantizeSynthetic quantizes the plan calibrated on SyntheticCalibration
// samples of the given input size — the serving tier's one-call path from a
// loaded float container to its int8 form.
func (p *Plan) QuantizeSynthetic(inputSize int) (*Plan, error) {
	if inputSize <= 0 {
		return nil, fmt.Errorf("infer: quantization input size %d", inputSize)
	}
	return p.Quantize(SyntheticCalibration(p.inC, inputSize, 0x5eed))
}
