package infer

import (
	"bytes"
	"math"
	"sync"
	"testing"

	"drainnas/internal/geodata"
	"drainnas/internal/latmeter"
	"drainnas/internal/nas"
	"drainnas/internal/nn"
	"drainnas/internal/onnxsize"
	"drainnas/internal/parallel"
	"drainnas/internal/resnet"
	"drainnas/internal/tensor"
)

// Documented acceptance bounds of the PTQ pass, checked on the task the
// models exist for: per randomized PaperSpace config, train briefly on a
// miniature drainage corpus, quantize with in-distribution calibration, and
// require the int8 plan's worst logit error to stay under
// quantParityMaxRelLogitErr of the float plan's own logit magnitude (trained
// models produce logits of wildly different scales, so the bound is
// relative) while the two plans agree on the predicted class for at least
// quantParityMinAgreement of the corpus.
const (
	quantParityMaxRelLogitErr = 0.06
	quantParityMinAgreement   = 0.99
)

// quantParityModel builds and briefly trains a model on a miniature geodata
// corpus so the logits carry real class margins (agreement on margin-free
// random logits would measure noise, not the quantizer), returning the
// exported container with the corpus tensors.
func quantParityModel(t *testing.T, cfg resnet.Config, seed uint64) ([]byte, *tensor.Tensor) {
	t.Helper()
	corpus := geodata.GenerateCorpus(geodata.CorpusOptions{ChipSize: 32, Scale: 96, Seed: seed})
	x, labels := corpus.Tensors(cfg.Channels)
	n := x.Dim(0)

	rng := tensor.NewRNG(seed)
	m, err := resnet.New(cfg, rng)
	if err != nil {
		t.Fatal(err)
	}
	opt := nn.NewSGD(m.Params(), 0.05, 0.9, 0)
	const batch = 16
	plane := cfg.Channels * 32 * 32
	for epoch := 0; epoch < 10; epoch++ {
		for lo := 0; lo+batch <= n; lo += batch {
			xb := tensor.FromSlice(x.Data()[lo*plane:(lo+batch)*plane], batch, cfg.Channels, 32, 32)
			y := m.Forward(xb, true)
			_, g := nn.CrossEntropy(y, labels[lo:lo+batch])
			nn.ZeroGrad(m.Params())
			m.Backward(g)
			opt.Step()
		}
	}
	var buf bytes.Buffer
	if _, err := onnxsize.Export(m, &buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes(), x
}

// TestQuantParityRandomConfigs is the float-oracle parity harness: draw stem
// configurations from the paper's search space, quantize each compiled plan
// with calibration drawn from the corpus, and hold the int8 plan to the
// documented bounds on fixed seeds.
func TestQuantParityRandomConfigs(t *testing.T) {
	space := nas.PaperSpace()
	rng := tensor.NewRNG(4242)
	combos := []nas.InputCombo{{Channels: 5, Batch: 4}, {Channels: 7, Batch: 4}}
	const draws = 4
	for d := 0; d < draws; d++ {
		cfg := space.RandomConfig(combos[d%len(combos)], rng)
		cfg.InitialOutputFeature = 8
		t.Run(cfg.Key(), func(t *testing.T) {
			container, x := quantParityModel(t, cfg, 300+uint64(d))
			plan, err := LoadPlan(bytes.NewReader(container))
			if err != nil {
				t.Fatal(err)
			}
			// Calibrate on the full corpus — calibration must see the
			// activation ranges the eval set exercises, or out-of-range
			// values clip and the comparison measures range estimation,
			// not the quantizer.
			qplan, err := plan.Quantize([]*tensor.Tensor{x})
			if err != nil {
				t.Fatal(err)
			}
			if qplan.Precision() != PrecisionInt8 {
				t.Fatalf("quantized plan precision %q", qplan.Precision())
			}

			want, err := plan.Forward(x)
			if err != nil {
				t.Fatal(err)
			}
			got, err := qplan.Forward(x)
			if err != nil {
				t.Fatal(err)
			}
			if !got.SameShape(want) {
				t.Fatalf("logit shape %v vs %v", got.Shape(), want.Shape())
			}

			worst, mag := 0.0, 0.0
			for i, wv := range want.Data() {
				if d := math.Abs(float64(got.Data()[i] - wv)); d > worst {
					worst = d
				}
				if a := math.Abs(float64(wv)); a > mag {
					mag = a
				}
			}
			if worst > quantParityMaxRelLogitErr*mag {
				t.Errorf("max abs logit error %.4f exceeds %.0f%% of logit magnitude %.2f",
					worst, 100*quantParityMaxRelLogitErr, mag)
			}

			wc := tensor.ArgMaxRows(want)
			gc := tensor.ArgMaxRows(got)
			agree := 0
			for i := range wc {
				if wc[i] == gc[i] {
					agree++
				}
			}
			if frac := float64(agree) / float64(len(wc)); frac < quantParityMinAgreement {
				t.Errorf("top-1 agreement %.4f below bound %.2f (%d/%d)", frac, quantParityMinAgreement, agree, len(wc))
			}
		})
	}
}

// TestQuantizeSyntheticCalibration covers the no-data path the serving tier
// uses: geodata-derived calibration for the paper's channel counts.
func TestQuantizeSyntheticCalibration(t *testing.T) {
	cfg := resnet.Config{
		Channels: 5, Batch: 4, KernelSize: 3, Stride: 2, Padding: 1,
		PoolChoice: 1, KernelSizePool: 3, StridePool: 2,
		InitialOutputFeature: 8, NumClasses: 2,
	}
	_, container := exportModel(t, cfg, 77)
	plan, err := LoadPlan(bytes.NewReader(container))
	if err != nil {
		t.Fatal(err)
	}
	qplan, err := plan.QuantizeSynthetic(32)
	if err != nil {
		t.Fatal(err)
	}
	x := tensor.RandNormal(tensor.NewRNG(5), 1, 2, cfg.Channels, 32, 32)
	logits, err := qplan.Forward(x)
	if err != nil {
		t.Fatal(err)
	}
	if logits.Dim(0) != 2 || logits.Dim(1) != cfg.NumClasses {
		t.Fatalf("logit shape %v", logits.Shape())
	}
	for _, v := range logits.Data() {
		if math.IsNaN(float64(v)) || math.IsInf(float64(v), 0) {
			t.Fatalf("non-finite logit %v", v)
		}
	}
	if _, err := qplan.Quantize(nil); err == nil {
		t.Fatal("re-quantizing an int8 plan must fail")
	}
}

// TestQuantizedSteadyStateZeroAlloc holds the int8 path to the same arena
// acceptance bar as the float path: once a session has seen a shape, further
// forwards of that shape allocate nothing.
func TestQuantizedSteadyStateZeroAlloc(t *testing.T) {
	if raceEnabled {
		t.Skip("race detector instruments allocations; alloc counts are not meaningful")
	}
	prev := parallel.DefaultWorkers
	parallel.DefaultWorkers = 1
	defer func() { parallel.DefaultWorkers = prev }()

	cfg := resnet.Config{
		Channels: 3, Batch: 4, KernelSize: 3, Stride: 2, Padding: 1,
		PoolChoice: 1, KernelSizePool: 3, StridePool: 2,
		InitialOutputFeature: 4, NumClasses: 2,
	}
	_, container := exportModel(t, cfg, 29)
	plan, err := LoadPlan(bytes.NewReader(container))
	if err != nil {
		t.Fatal(err)
	}
	qplan, err := plan.QuantizeSynthetic(16)
	if err != nil {
		t.Fatal(err)
	}
	sess := qplan.NewSession()
	x := tensor.RandNormal(tensor.NewRNG(3), 1, 1, 3, 16, 16)
	if _, err := sess.Forward(x); err != nil { // builds the arena, packs panels
		t.Fatal(err)
	}
	if _, err := sess.Forward(x); err != nil { // warms the scratch pools
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(20, func() {
		if _, err := sess.Forward(x); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Fatalf("steady-state quantized Forward allocates %.1f objects/op, want 0", allocs)
	}
}

// TestQuantizedPlanSharedAcrossSessionsRace hammers one int8 plan from many
// goroutines across per-goroutine sessions and the pooled Forward path; with
// -race this is the quantized plan's immutability check, and in any mode it
// pins result determinism across concurrent executors.
func TestQuantizedPlanSharedAcrossSessionsRace(t *testing.T) {
	cfg := resnet.Config{
		Channels: 5, Batch: 4, KernelSize: 3, Stride: 2, Padding: 1,
		PoolChoice: 1, KernelSizePool: 3, StridePool: 2,
		InitialOutputFeature: 8, NumClasses: 2,
	}
	_, container := exportModel(t, cfg, 61)
	plan, err := LoadPlan(bytes.NewReader(container))
	if err != nil {
		t.Fatal(err)
	}
	qplan, err := plan.QuantizeSynthetic(32)
	if err != nil {
		t.Fatal(err)
	}
	x := tensor.RandNormal(tensor.NewRNG(13), 1, 2, cfg.Channels, 32, 32)
	ref, err := qplan.Forward(x)
	if err != nil {
		t.Fatal(err)
	}

	const workers = 8
	var wg sync.WaitGroup
	errs := make(chan error, workers)
	for g := 0; g < workers; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			sess := qplan.NewSession()
			for it := 0; it < 6; it++ {
				var logits *tensor.Tensor
				var err error
				if (g+it)%2 == 0 {
					logits, err = sess.Forward(x)
				} else {
					logits, err = qplan.Forward(x)
				}
				if err != nil {
					errs <- err
					return
				}
				for i, rv := range ref.Data() {
					if logits.Data()[i] != rv {
						t.Errorf("goroutine %d iter %d: logit %d = %v, want %v", g, it, i, logits.Data()[i], rv)
						return
					}
				}
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}

// TestQuantizedCostGraph pins the precision coefficient plumbing: an int8
// plan's cost graph carries Int8CostScale and predicts strictly lower
// latency than the float graph on every paper device, while keeping the
// kernel sequence identical.
func TestQuantizedCostGraph(t *testing.T) {
	cfg := resnet.Config{
		Channels: 5, Batch: 4, KernelSize: 7, Stride: 2, Padding: 3,
		PoolChoice: 1, KernelSizePool: 3, StridePool: 2,
		InitialOutputFeature: 16, NumClasses: 2,
	}
	_, container := exportModel(t, cfg, 83)
	plan, err := LoadPlan(bytes.NewReader(container))
	if err != nil {
		t.Fatal(err)
	}
	qplan, err := plan.QuantizeSynthetic(32)
	if err != nil {
		t.Fatal(err)
	}
	fg, err := plan.CostGraph(32)
	if err != nil {
		t.Fatal(err)
	}
	qg, err := qplan.CostGraph(32)
	if err != nil {
		t.Fatal(err)
	}
	if fg.CostScale != 0 {
		t.Fatalf("float graph cost scale %v, want 0", fg.CostScale)
	}
	if qg.CostScale != latmeter.Int8CostScale {
		t.Fatalf("int8 graph cost scale %v, want %v", qg.CostScale, latmeter.Int8CostScale)
	}
	if len(fg.Kernels) != len(qg.Kernels) {
		t.Fatalf("kernel count %d vs %d", len(fg.Kernels), len(qg.Kernels))
	}
	for _, dev := range latmeter.Devices() {
		f, q := dev.LatencyMS(fg), dev.LatencyMS(qg)
		if !(q < f) {
			t.Errorf("%s: int8 %.3fms not below fp32 %.3fms", dev.Name, q, f)
		}
	}
}

func TestParsePrecisionAndModelKey(t *testing.T) {
	for _, tc := range []struct {
		in   string
		want Precision
	}{{"", PrecisionFP32}, {"fp32", PrecisionFP32}, {"Float32", PrecisionFP32}, {"int8", PrecisionInt8}, {"I8", PrecisionInt8}} {
		got, err := ParsePrecision(tc.in)
		if err != nil || got != tc.want {
			t.Errorf("ParsePrecision(%q) = %v, %v; want %v", tc.in, got, err, tc.want)
		}
	}
	if _, err := ParsePrecision("fp16"); err == nil {
		t.Error("ParsePrecision(fp16) should fail")
	}

	name, prec, err := ParseModelKey("culvert@int8")
	if err != nil || name != "culvert" || prec != PrecisionInt8 {
		t.Errorf("ParseModelKey(culvert@int8) = %q, %v, %v", name, prec, err)
	}
	name, prec, err = ParseModelKey("culvert")
	if err != nil || name != "culvert" || prec != PrecisionFP32 {
		t.Errorf("ParseModelKey(culvert) = %q, %v, %v", name, prec, err)
	}
	if _, _, err := ParseModelKey("@int8"); err == nil {
		t.Error("ParseModelKey(@int8) should fail")
	}
	if _, _, err := ParseModelKey("m@fp17"); err == nil {
		t.Error("ParseModelKey(m@fp17) should fail")
	}
	if got := ModelKey("m", PrecisionInt8); got != "m@int8" {
		t.Errorf("ModelKey int8 = %q", got)
	}
	if got := ModelKey("m", PrecisionFP32); got != "m" {
		t.Errorf("ModelKey fp32 = %q", got)
	}
	if PrecisionInt8.Bits() != 8 || PrecisionFP32.Bits() != 32 {
		t.Error("Precision.Bits mismatch")
	}
}
