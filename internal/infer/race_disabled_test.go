//go:build !race

package infer

// raceEnabled reports that this binary was built with -race.
const raceEnabled = false
