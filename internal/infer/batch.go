package infer

import (
	"fmt"

	"drainnas/internal/tensor"
)

// Prediction is one request's output from RunBatch.
type Prediction struct {
	// Logits is the (classes)-length score vector for the sample.
	Logits []float32
	// Class is the argmax of Logits.
	Class int
}

// RunBatch executes the plan over a set of independent single-image inputs,
// stacking them along the batch dimension so the per-call overhead of
// conv/matmul dispatch amortizes across the batch. Each input is either
// (C, H, W) or (1, C, H, W); inputs with the same spatial size are stacked
// into one forward pass, and inputs with differing sizes are grouped so
// every group runs as one stacked batch. Results come back in input order.
//
// RunBatch is the serving-side entry point: the batcher in internal/serve
// feeds it whole flush batches. It is safe for concurrent use — each call
// draws a pooled session, and the per-request logits are copied out of the
// session arena before the session is returned.
func (p *Plan) RunBatch(inputs []*tensor.Tensor) ([]Prediction, error) {
	if len(inputs) == 0 {
		return nil, nil
	}
	// Group input indices by spatial size, preserving submission order
	// within each group.
	type group struct{ idx []int }
	groups := make(map[[2]int]*group)
	var order [][2]int
	for i, in := range inputs {
		if in == nil {
			return nil, fmt.Errorf("infer: batch input %d is nil", i)
		}
		var c, h, w int
		switch in.NDim() {
		case 3:
			c, h, w = in.Dim(0), in.Dim(1), in.Dim(2)
		case 4:
			if in.Dim(0) != 1 {
				return nil, fmt.Errorf("infer: batch input %d has batch dim %d, want 1", i, in.Dim(0))
			}
			c, h, w = in.Dim(1), in.Dim(2), in.Dim(3)
		default:
			return nil, fmt.Errorf("infer: batch input %d must be (C,H,W) or (1,C,H,W), got %v", i, in.Shape())
		}
		if c != p.inC {
			return nil, fmt.Errorf("infer: batch input %d has %d channels, model wants %d", i, c, p.inC)
		}
		key := [2]int{h, w}
		g, ok := groups[key]
		if !ok {
			g = &group{}
			groups[key] = g
			order = append(order, key)
		}
		g.idx = append(g.idx, i)
	}
	sess := p.getSession()
	defer p.putSession(sess)
	out := make([]Prediction, len(inputs))
	for _, key := range order {
		g := groups[key]
		h, w := key[0], key[1]
		plane := p.inC * h * w
		x := tensor.New(len(g.idx), p.inC, h, w)
		for bi, i := range g.idx {
			copy(x.Data()[bi*plane:(bi+1)*plane], inputs[i].Data())
		}
		logits, err := sess.Forward(x)
		if err != nil {
			return nil, err
		}
		classes := tensor.ArgMaxRows(logits)
		nOut := logits.Dim(1)
		for bi, i := range g.idx {
			row := make([]float32, nOut)
			copy(row, logits.Data()[bi*nOut:(bi+1)*nOut])
			out[i] = Prediction{Logits: row, Class: classes[bi]}
		}
	}
	return out, nil
}

// RunBatch executes the model over independent single-image inputs.
//
// Compatibility wrapper over Plan.RunBatch.
func (rt *Runtime) RunBatch(inputs []*tensor.Tensor) ([]Prediction, error) {
	return rt.plan.RunBatch(inputs)
}
