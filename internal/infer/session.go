package infer

import (
	"fmt"

	"drainnas/internal/metrics"
	"drainnas/internal/tensor"
)

// maxArenaElems bounds any single activation tensor a session will allocate,
// guarding against adversarial containers whose huge padding or channel
// attributes would otherwise explode intermediate shapes.
const maxArenaElems = 1 << 28

// Session is one plan executor: it owns the per-shape activation arenas a
// forward pass writes into, so the steady state allocates nothing. Sessions
// are cheap (arenas build lazily per input shape) but NOT safe for
// concurrent use — give each goroutine its own, all sharing one Plan.
type Session struct {
	plan   *Plan
	arenas map[arenaKey]*arena
}

type arenaKey struct{ n, h, w int }

// arena holds the preallocated activation tensors for one (N, H, W) input
// shape. Buffers are reused across values via compile-time liveness: a
// value's backing slab is recycled for later outputs once its last reader
// has run, with each op's output allocated before its inputs are freed so an
// output never aliases an input.
type arena struct {
	vals []*tensor.Tensor // per value id; vals[0] stays nil (caller input)
	// 4-D views over the FC input/output buffers, prebuilt so the pointwise
	// conv path needs no per-call reshaping. Indexed by op position.
	fcIn  []*tensor.Tensor
	fcOut []*tensor.Tensor

	// Int8-plan state: s8 activation slabs per value id (the same liveness
	// recycling as vals), their shapes, and the quantized form of the
	// caller's input. The terminal float value still lives in vals.
	qvals [][]int8
	qdims [][]int
	qin   []int8
}

// NewSession creates an executor for the plan.
func (p *Plan) NewSession() *Session {
	metrics.Infer.SessionCreated()
	return &Session{plan: p, arenas: make(map[arenaKey]*arena)}
}

// Plan returns the plan this session executes.
func (s *Session) Plan() *Plan { return s.plan }

// Forward executes the plan on an (N, C, H, W) input. The returned
// (N, classes) logits tensor is owned by the session's arena: it stays valid
// until the session's next Forward call. Callers that need the logits past
// that point must copy them (Plan.Forward does).
func (s *Session) Forward(x *tensor.Tensor) (*tensor.Tensor, error) {
	if x.NDim() != 4 {
		return nil, fmt.Errorf("infer: input must be (N,C,H,W), got %v", x.Shape())
	}
	if x.Dim(1) != s.plan.inC {
		return nil, fmt.Errorf("infer: input has %d channels, model wants %d", x.Dim(1), s.plan.inC)
	}
	key := arenaKey{n: x.Dim(0), h: x.Dim(2), w: x.Dim(3)}
	ar := s.arenas[key]
	if ar == nil {
		var err error
		ar, err = s.plan.buildArena(key)
		if err != nil {
			return nil, err
		}
		s.arenas[key] = ar
		metrics.Infer.ArenaMiss()
	} else {
		metrics.Infer.ArenaHit()
	}

	p := s.plan
	if p.Precision() == PrecisionInt8 {
		return p.forwardQuantized(x, ar)
	}
	for idx := range p.ops {
		op := &p.ops[idx]
		in := ar.vals[op.in]
		if op.in == 0 {
			in = x
		}
		out := ar.vals[op.out]
		switch op.kind {
		case opConv:
			op.conv.ForwardInto(out, in)
		case opRelu:
			tensor.ReLUInto(out, in)
		case opMaxPool:
			tensor.MaxPool2DInto(out, in, op.kernel, op.stride, op.pad)
		case opAdd:
			in2 := ar.vals[op.in2]
			if op.in2 == 0 {
				in2 = x
			}
			if op.relu {
				tensor.AddReLUInto(out, in, in2)
			} else {
				tensor.AddInto(out, in, in2)
			}
		case opGlobalAvgPool:
			tensor.GlobalAvgPool2DInto(out, in)
		case opFC:
			op.conv.ForwardInto(ar.fcOut[idx], ar.fcIn[idx])
		}
	}
	return ar.vals[p.outVal], nil
}

// Classify runs Forward and returns the argmax class per sample.
func (s *Session) Classify(x *tensor.Tensor) ([]int, error) {
	logits, err := s.Forward(x)
	if err != nil {
		return nil, err
	}
	return tensor.ArgMaxRows(logits), nil
}

// buildArena runs shape inference for one input shape and preallocates every
// activation. This is the only allocating step of the compiled path; it runs
// once per (session, input shape). All spatial validation lives here — after
// a successful build, executing the ops for the same input shape cannot
// fail.
func (p *Plan) buildArena(key arenaKey) (*arena, error) {
	if key.n <= 0 || key.h <= 0 || key.w <= 0 {
		return nil, fmt.Errorf("infer: input shape [%d %d %d %d] has non-positive dims", key.n, p.inC, key.h, key.w)
	}
	if p.Precision() == PrecisionInt8 {
		return p.buildQuantArena(key)
	}
	shapes := make([][]int, p.numVals)
	shapes[0] = []int{key.n, p.inC, key.h, key.w}
	ar := &arena{
		vals:  make([]*tensor.Tensor, p.numVals),
		fcIn:  make([]*tensor.Tensor, len(p.ops)),
		fcOut: make([]*tensor.Tensor, len(p.ops)),
	}
	// Free slabs, reusable for later values; smallest-fitting slab wins.
	var free [][]float32
	alloc := func(numel int) []float32 {
		best := -1
		for i, sl := range free {
			if cap(sl) >= numel && (best < 0 || cap(free[best]) > cap(sl)) {
				best = i
			}
		}
		if best >= 0 {
			sl := free[best][:numel]
			free[best] = free[len(free)-1]
			free = free[:len(free)-1]
			return sl
		}
		return make([]float32, numel)
	}

	for idx := range p.ops {
		op := &p.ops[idx]
		in := shapes[op.in]
		var out []int
		switch op.kind {
		case opConv:
			oh, ow := op.conv.OutSize(in[2], in[3])
			if oh <= 0 || ow <= 0 {
				return nil, fmt.Errorf("infer: input %dx%d too small for conv %s", key.h, key.w, op.name)
			}
			out = []int{in[0], op.conv.OutChannels(), oh, ow}
		case opRelu:
			out = append([]int(nil), in...)
		case opMaxPool:
			oh := tensor.ConvOut(in[2], op.kernel, op.stride, op.pad)
			ow := tensor.ConvOut(in[3], op.kernel, op.stride, op.pad)
			if oh <= 0 || ow <= 0 {
				return nil, fmt.Errorf("infer: input %dx%d too small for pool %s", key.h, key.w, op.name)
			}
			out = []int{in[0], in[1], oh, ow}
		case opAdd:
			in2 := shapes[op.in2]
			if len(in) != len(in2) {
				return nil, fmt.Errorf("infer: Add %s rank mismatch %v vs %v", op.name, in, in2)
			}
			for d := range in {
				if in[d] != in2[d] {
					return nil, fmt.Errorf("infer: Add %s shape mismatch %v vs %v", op.name, in, in2)
				}
			}
			out = append([]int(nil), in...)
		case opGlobalAvgPool:
			out = []int{in[0], in[1]}
		case opFC:
			out = []int{in[0], op.conv.OutChannels()}
		}
		numel := 1
		for _, d := range out {
			numel *= d
			if numel <= 0 || numel > maxArenaElems {
				return nil, fmt.Errorf("infer: op %s output shape %v exceeds the arena bound", op.name, out)
			}
		}
		shapes[op.out] = out
		ar.vals[op.out] = tensor.FromSlice(alloc(numel), out...)
		if op.kind == opFC {
			// op.in is never value 0 here: Compile requires a rank-2 input,
			// and the caller input is rank 4.
			ar.fcIn[idx] = tensor.FromSlice(ar.vals[op.in].Data(), in[0], in[1], 1, 1)
			ar.fcOut[idx] = tensor.FromSlice(ar.vals[op.out].Data(), out[0], out[1], 1, 1)
		}
		// Recycle the slabs of values this op read for the last time. The
		// output above was allocated first, so it can never share a slab with
		// one of its own inputs.
		for _, v := range []int{op.in, op.in2} {
			if v > 0 && v != op.out && p.lastUse[v] == idx && (v != op.in2 || op.in2 != op.in) {
				free = append(free, ar.vals[v].Data())
			}
		}
	}
	return ar, nil
}

// buildQuantArena is buildArena for int8 plans: the same shape inference and
// liveness-driven slab recycling, with s8 slabs for every intermediate value
// and a float tensor only for the terminal (dequantized) output.
func (p *Plan) buildQuantArena(key arenaKey) (*arena, error) {
	shapes := make([][]int, p.numVals)
	shapes[0] = []int{key.n, p.inC, key.h, key.w}
	ar := &arena{
		vals:  make([]*tensor.Tensor, p.numVals),
		fcIn:  make([]*tensor.Tensor, len(p.ops)),
		fcOut: make([]*tensor.Tensor, len(p.ops)),
		qvals: make([][]int8, p.numVals),
		qdims: shapes,
		qin:   make([]int8, key.n*p.inC*key.h*key.w),
	}
	var free [][]int8
	alloc := func(numel int) []int8 {
		best := -1
		for i, sl := range free {
			if cap(sl) >= numel && (best < 0 || cap(free[best]) > cap(sl)) {
				best = i
			}
		}
		if best >= 0 {
			sl := free[best][:numel]
			free[best] = free[len(free)-1]
			free = free[:len(free)-1]
			return sl
		}
		return make([]int8, numel)
	}

	for idx := range p.ops {
		op := &p.ops[idx]
		in := shapes[op.in]
		var out []int
		switch op.kind {
		case opConv:
			oh, ow := op.conv.OutSize(in[2], in[3])
			if oh <= 0 || ow <= 0 {
				return nil, fmt.Errorf("infer: input %dx%d too small for conv %s", key.h, key.w, op.name)
			}
			out = []int{in[0], op.conv.OutChannels(), oh, ow}
		case opRelu:
			out = append([]int(nil), in...)
		case opMaxPool:
			oh := tensor.ConvOut(in[2], op.kernel, op.stride, op.pad)
			ow := tensor.ConvOut(in[3], op.kernel, op.stride, op.pad)
			if oh <= 0 || ow <= 0 {
				return nil, fmt.Errorf("infer: input %dx%d too small for pool %s", key.h, key.w, op.name)
			}
			out = []int{in[0], in[1], oh, ow}
		case opAdd:
			in2 := shapes[op.in2]
			if len(in) != len(in2) {
				return nil, fmt.Errorf("infer: Add %s rank mismatch %v vs %v", op.name, in, in2)
			}
			for d := range in {
				if in[d] != in2[d] {
					return nil, fmt.Errorf("infer: Add %s shape mismatch %v vs %v", op.name, in, in2)
				}
			}
			out = append([]int(nil), in...)
		case opGlobalAvgPool:
			out = []int{in[0], in[1]}
		case opFC:
			out = []int{in[0], op.conv.OutChannels()}
		}
		numel := 1
		for _, d := range out {
			numel *= d
			if numel <= 0 || numel > maxArenaElems {
				return nil, fmt.Errorf("infer: op %s output shape %v exceeds the arena bound", op.name, out)
			}
		}
		shapes[op.out] = out
		// The dequantizing head (global pool and FC) produces float values;
		// everything else lives in the s8 slabs.
		if op.kind == opGlobalAvgPool || op.kind == opFC {
			ar.vals[op.out] = tensor.New(out...)
		} else {
			ar.qvals[op.out] = alloc(numel)
		}
		if op.kind == opFC {
			ar.fcIn[idx] = tensor.FromSlice(ar.vals[op.in].Data(), in[0], in[1], 1, 1)
			ar.fcOut[idx] = tensor.FromSlice(ar.vals[op.out].Data(), out[0], out[1], 1, 1)
		}
		// Recycle int8 slabs only — float head values never re-enter the
		// s8 free list (ar.qvals[v] is nil for them).
		for _, v := range []int{op.in, op.in2} {
			if v > 0 && v != op.out && ar.qvals[v] != nil && p.lastUse[v] == idx && (v != op.in2 || op.in2 != op.in) {
				free = append(free, ar.qvals[v])
			}
		}
	}
	return ar, nil
}

// forwardQuantized executes an int8 plan: quantize the caller's input once,
// run the integer op list over the s8 arena, and return the float logits the
// terminal op dequantized into.
func (p *Plan) forwardQuantized(x *tensor.Tensor, ar *arena) (*tensor.Tensor, error) {
	tensor.QuantizeInto(ar.qin, x.Data(), p.inScale)
	for idx := range p.ops {
		op := &p.ops[idx]
		ins := ar.qdims[op.in]
		in := ar.qvals[op.in]
		if op.in == 0 {
			in = ar.qin
		}
		switch op.kind {
		case opConv:
			op.qconv.ForwardInto(ar.qvals[op.out], nil, in, ins[0], ins[2], ins[3])
		case opRelu:
			tensor.QReLUInto(ar.qvals[op.out], in)
		case opMaxPool:
			tensor.QMaxPool2DInto(ar.qvals[op.out], in, ins[0], ins[1], ins[2], ins[3], op.kernel, op.stride, op.pad)
		case opAdd:
			in2 := ar.qvals[op.in2]
			if op.in2 == 0 {
				in2 = ar.qin
			}
			tensor.QAddInto(ar.qvals[op.out], in, in2, op.ra, op.rb, op.relu)
		case opGlobalAvgPool:
			tensor.QGlobalAvgPoolFloatInto(ar.vals[op.out].Data(), in, ins[0], ins[1], ins[2], ins[3], op.ratio)
		case opFC:
			// The float classifier head, exactly as in the fp32 path.
			op.conv.ForwardInto(ar.fcOut[idx], ar.fcIn[idx])
		}
	}
	return ar.vals[p.outVal], nil
}
