package infer

import (
	"bytes"
	"math"
	"testing"

	"drainnas/internal/nn"
	"drainnas/internal/onnxsize"
	"drainnas/internal/resnet"
	"drainnas/internal/tensor"
)

// exportModel builds, briefly trains (to move BN stats), and exports a
// model, returning both the model and the container bytes.
func exportModel(t *testing.T, cfg resnet.Config, seed uint64) (*resnet.Model, []byte) {
	t.Helper()
	rng := tensor.NewRNG(seed)
	m, err := resnet.New(cfg, rng)
	if err != nil {
		t.Fatal(err)
	}
	opt := nn.NewSGD(m.Params(), 0.01, 0.9, 0)
	for i := 0; i < 3; i++ {
		x := tensor.RandNormal(rng, 1, 4, cfg.Channels, 32, 32)
		y := m.Forward(x, true)
		_, g := nn.CrossEntropy(y, []int{0, 1, 0, 1})
		nn.ZeroGrad(m.Params())
		m.Backward(g)
		opt.Step()
	}
	var buf bytes.Buffer
	if _, err := onnxsize.Export(m, &buf); err != nil {
		t.Fatal(err)
	}
	return m, buf.Bytes()
}

func TestRuntimeMatchesTrainingModel(t *testing.T) {
	for _, cfg := range []resnet.Config{
		{Channels: 5, Batch: 4, KernelSize: 3, Stride: 2, Padding: 1,
			PoolChoice: 0, InitialOutputFeature: 8, NumClasses: 2},
		{Channels: 7, Batch: 4, KernelSize: 7, Stride: 2, Padding: 3,
			PoolChoice: 1, KernelSizePool: 3, StridePool: 2, InitialOutputFeature: 8, NumClasses: 2},
		{Channels: 5, Batch: 4, KernelSize: 3, Stride: 1, Padding: 2,
			PoolChoice: 1, KernelSizePool: 2, StridePool: 2, InitialOutputFeature: 8, NumClasses: 2},
	} {
		m, container := exportModel(t, cfg, 11)
		rt, err := Load(bytes.NewReader(container))
		if err != nil {
			t.Fatalf("cfg %s: %v", cfg.Key(), err)
		}
		if rt.InputChannels() != cfg.Channels {
			t.Fatalf("cfg %s: runtime channels %d", cfg.Key(), rt.InputChannels())
		}
		rng := tensor.NewRNG(99)
		x := tensor.RandNormal(rng, 1, 3, cfg.Channels, 32, 32)
		want := m.Forward(x, false)
		got, err := rt.Forward(x)
		if err != nil {
			t.Fatalf("cfg %s: %v", cfg.Key(), err)
		}
		if !got.SameShape(want) {
			t.Fatalf("cfg %s: shape %v vs %v", cfg.Key(), got.Shape(), want.Shape())
		}
		for i := range got.Data() {
			diff := math.Abs(float64(got.Data()[i] - want.Data()[i]))
			if diff > 1e-3*(1+math.Abs(float64(want.Data()[i]))) {
				t.Fatalf("cfg %s: logit %d runtime %v vs model %v",
					cfg.Key(), i, got.Data()[i], want.Data()[i])
			}
		}
	}
}

func TestRuntimeClassifyAgreesWithModel(t *testing.T) {
	cfg := resnet.Config{Channels: 5, Batch: 4, KernelSize: 3, Stride: 2, Padding: 1,
		PoolChoice: 1, KernelSizePool: 3, StridePool: 2, InitialOutputFeature: 8, NumClasses: 2}
	m, container := exportModel(t, cfg, 17)
	rt, err := Load(bytes.NewReader(container))
	if err != nil {
		t.Fatal(err)
	}
	rng := tensor.NewRNG(5)
	x := tensor.RandNormal(rng, 1, 8, 5, 32, 32)
	want := tensor.ArgMaxRows(m.Forward(x, false))
	got, err := rt.Classify(x)
	if err != nil {
		t.Fatal(err)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("sample %d: runtime class %d, model class %d", i, got[i], want[i])
		}
	}
}

func TestRuntimeRejectsBadInput(t *testing.T) {
	cfg := resnet.Config{Channels: 5, Batch: 4, KernelSize: 3, Stride: 2, Padding: 1,
		PoolChoice: 0, InitialOutputFeature: 8, NumClasses: 2}
	_, container := exportModel(t, cfg, 3)
	rt, err := Load(bytes.NewReader(container))
	if err != nil {
		t.Fatal(err)
	}
	rng := tensor.NewRNG(1)
	// Wrong channel count.
	if _, err := rt.Forward(tensor.RandNormal(rng, 1, 1, 7, 32, 32)); err == nil {
		t.Fatal("wrong channels accepted")
	}
	// Wrong rank.
	if _, err := rt.Forward(tensor.RandNormal(rng, 1, 5, 32, 32)); err == nil {
		t.Fatal("rank-3 input accepted")
	}
}

func TestLoadRejectsGarbage(t *testing.T) {
	if _, err := Load(bytes.NewReader([]byte("not a container"))); err == nil {
		t.Fatal("garbage accepted")
	}
}

func TestGraphNameExposed(t *testing.T) {
	cfg := resnet.Config{Channels: 5, Batch: 4, KernelSize: 3, Stride: 2, Padding: 1,
		PoolChoice: 0, InitialOutputFeature: 8, NumClasses: 2}
	_, container := exportModel(t, cfg, 4)
	rt, _ := Load(bytes.NewReader(container))
	if rt.GraphName() == "" {
		t.Fatal("empty graph name")
	}
}

func TestCheckpointRestoresTrainableModel(t *testing.T) {
	// Full checkpoint cycle: train → export → decode → rebuild config from
	// the graph name → load weights into a fresh model → identical
	// eval-mode behaviour. This is the resume-training path.
	cfg := resnet.Config{Channels: 5, Batch: 4, KernelSize: 3, Stride: 2, Padding: 1,
		PoolChoice: 1, KernelSizePool: 3, StridePool: 2, InitialOutputFeature: 8, NumClasses: 2}
	src, container := exportModel(t, cfg, 31)
	dec, err := onnxsize.Decode(bytes.NewReader(container))
	if err != nil {
		t.Fatal(err)
	}
	numClasses := 0
	for _, init := range dec.Graph.Initializers {
		if init.Name == "fc.bias" {
			numClasses = init.Dims[0]
		}
	}
	restoredCfg, err := resnet.ConfigFromGraphName(dec.Graph.Name, numClasses)
	if err != nil {
		t.Fatal(err)
	}
	restoredCfg.Batch = cfg.Batch
	restored, err := resnet.New(restoredCfg, tensor.NewRNG(777))
	if err != nil {
		t.Fatal(err)
	}
	if err := resnet.LoadWeights(restored, dec.Weights); err != nil {
		t.Fatal(err)
	}
	rng := tensor.NewRNG(8)
	x := tensor.RandNormal(rng, 1, 2, 5, 32, 32)
	want := src.Forward(x, false)
	got := restored.Forward(x, false)
	for i := range got.Data() {
		diff := float64(got.Data()[i] - want.Data()[i])
		if diff > 1e-4 || diff < -1e-4 {
			t.Fatalf("restored logit %d: %v vs %v", i, got.Data()[i], want.Data()[i])
		}
	}
}
