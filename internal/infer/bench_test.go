package infer

import (
	"bytes"
	"testing"

	"drainnas/internal/onnxsize"
	"drainnas/internal/resnet"
	"drainnas/internal/tensor"
)

// benchConfig is a paper-space stem over a small backbone: big enough that
// the GEMM path engages, small enough that -benchtime=1x CI smoke runs are
// instant.
var benchConfig = resnet.Config{
	Channels: 5, Batch: 8, KernelSize: 7, Stride: 2, Padding: 3,
	PoolChoice: 1, KernelSizePool: 3, StridePool: 2,
	InitialOutputFeature: 16, NumClasses: 2,
}

func benchContainer(b *testing.B) []byte {
	b.Helper()
	rng := tensor.NewRNG(41)
	m, err := resnet.New(benchConfig, rng)
	if err != nil {
		b.Fatal(err)
	}
	var buf bytes.Buffer
	if _, err := onnxsize.Export(m, &buf); err != nil {
		b.Fatal(err)
	}
	return buf.Bytes()
}

func benchInput(batch int) *tensor.Tensor {
	return tensor.RandNormal(tensor.NewRNG(9), 1, batch, benchConfig.Channels, 32, 32)
}

// BenchmarkInterpretedBatch1 is the "before" number: the per-call graph
// interpreter, which re-resolves topology, runs BN as its own pass and
// allocates a tensor per op.
func BenchmarkInterpretedBatch1(b *testing.B) {
	rt, err := Load(bytes.NewReader(benchContainer(b)))
	if err != nil {
		b.Fatal(err)
	}
	x := benchInput(1)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := rt.forwardInterpreted(x); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkCompiledBatch1 is the "after" number: the compiled plan through a
// warm session (arena built, weights packed).
func BenchmarkCompiledBatch1(b *testing.B) {
	plan, err := LoadPlan(bytes.NewReader(benchContainer(b)))
	if err != nil {
		b.Fatal(err)
	}
	sess := plan.NewSession()
	x := benchInput(1)
	if _, err := sess.Forward(x); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := sess.Forward(x); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkInterpretedBatch8(b *testing.B) {
	rt, err := Load(bytes.NewReader(benchContainer(b)))
	if err != nil {
		b.Fatal(err)
	}
	x := benchInput(8)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := rt.forwardInterpreted(x); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkCompiledBatch8(b *testing.B) {
	plan, err := LoadPlan(bytes.NewReader(benchContainer(b)))
	if err != nil {
		b.Fatal(err)
	}
	sess := plan.NewSession()
	x := benchInput(8)
	if _, err := sess.Forward(x); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := sess.Forward(x); err != nil {
			b.Fatal(err)
		}
	}
}

// benchQuantPlan compiles and quantizes the benchmark model once per run.
func benchQuantPlan(b *testing.B) *Plan {
	b.Helper()
	plan, err := LoadPlan(bytes.NewReader(benchContainer(b)))
	if err != nil {
		b.Fatal(err)
	}
	qplan, err := plan.QuantizeSynthetic(32)
	if err != nil {
		b.Fatal(err)
	}
	return qplan
}

// BenchmarkQuantizedBatch1 is the int8 number against BenchmarkCompiledBatch1:
// the same plan post-training-quantized, run through a warm session (arena
// built, int8 panels packed).
func BenchmarkQuantizedBatch1(b *testing.B) {
	sess := benchQuantPlan(b).NewSession()
	x := benchInput(1)
	if _, err := sess.Forward(x); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := sess.Forward(x); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkQuantizedBatch8(b *testing.B) {
	sess := benchQuantPlan(b).NewSession()
	x := benchInput(8)
	if _, err := sess.Forward(x); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := sess.Forward(x); err != nil {
			b.Fatal(err)
		}
	}
}
