//go:build race

package infer

// raceEnabled reports that this binary was built with -race. The data-race
// detector instruments allocations, so alloc-count assertions are meaningless
// under it and skip themselves.
const raceEnabled = true
