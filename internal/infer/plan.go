package infer

import (
	"fmt"
	"io"
	"math"
	"strings"
	"sync"

	"drainnas/internal/metrics"
	"drainnas/internal/onnxsize"
	"drainnas/internal/tensor"
)

// opKind enumerates the fused operations a compiled plan executes. The
// container's Conv → BatchNormalization → Relu chains collapse into a single
// opConv (BN folded into weights/bias, ReLU fused into the epilogue), and
// Add → Relu collapses into one fused residual join, so a plan runs far
// fewer ops than the graph has nodes.
type opKind uint8

const (
	opConv opKind = iota
	opRelu
	opMaxPool
	opAdd
	opGlobalAvgPool
	opFC
)

// planOp is one executable step. Inputs and output are value ids into the
// session arena; value 0 is the caller's input tensor, bound per call.
type planOp struct {
	kind opKind
	name string // originating node name, for error messages
	in   int
	in2  int // second operand of opAdd (the shortcut); -1 otherwise
	out  int

	conv                *tensor.PackedConv // opConv, opFC
	kernel, stride, pad int                // opMaxPool
	relu                bool               // opAdd: trailing ReLU fused into the join

	// Int8 payloads, set by Plan.Quantize. Quantized ops keep conv too: the
	// cost graph and shape inference read geometry from it either way.
	qconv  *tensor.QuantizedConv // opConv
	ra, rb float32               // opAdd: input scale ratios sa/so, sb/so
	ratio  float32               // opGlobalAvgPool: dequantizing input scale
}

// Plan is a model compiled for repeated execution: the residual topology
// resolved once into an explicit op list with precomputed buffer indices,
// BatchNorm folded into conv weights, ReLU fused into conv/add epilogues,
// and every weight pre-shaped (and lazily panel-packed) in a PackedConv.
//
// A Plan is immutable and safe to share between any number of goroutines;
// per-goroutine execution state lives in Sessions (NewSession). The
// Forward/Classify/RunBatch convenience methods draw Sessions from an
// internal pool, so a Plan is also directly usable as a concurrent executor.
type Plan struct {
	name    string
	inC     int
	classes int

	ops     []planOp
	numVals int
	lastUse []int // lastUse[v]: index of the last op reading value v; -1 if never read
	outVal  int

	// precision is PrecisionFP32 for compiled plans and PrecisionInt8 for
	// plans produced by Quantize; inScale is the int8 input activation scale.
	precision Precision
	inScale   float32

	sessions sync.Pool
}

// LoadPlan decodes a container and compiles it. It is the plan-level
// equivalent of Load.
func LoadPlan(r io.Reader) (*Plan, error) {
	dec, err := onnxsize.Decode(r)
	if err != nil {
		return nil, fmt.Errorf("infer: %w", err)
	}
	return Compile(dec)
}

// Compile lowers a decoded container into an execution plan. All structural
// validation happens here — weight presence and dims, channel chaining,
// attribute sanity, residual topology — so execution never re-derives any of
// it. Compile reads the exporter's conventions once: a node named
// layerS.B.conv1 opens a residual block whose input feeds the block's Add,
// optionally through a layerS.B.down.* projection.
func Compile(dec *onnxsize.Decoded) (*Plan, error) {
	c := &compiler{graph: dec.Graph, weights: dec.Weights}
	p := &Plan{name: dec.Graph.Name, inC: -1, outVal: -1, precision: PrecisionFP32}

	nodes := dec.Graph.Nodes
	cur := 0
	nextVal := 1
	// Channel count and rank per value id; -1 channels = not yet constrained
	// (only possible for the input value before the first conv).
	chans := []int{-1}
	ranks := []int{4}
	newVal := func(ch, rank int) int {
		v := nextVal
		nextVal++
		chans = append(chans, ch)
		ranks = append(ranks, rank)
		return v
	}
	blockIn, shortcut, mainPath := -1, -1, -1

	i := 0
	for i < len(nodes) {
		node := nodes[i]
		switch node.OpType {
		case "Conv":
			src := cur
			if strings.HasPrefix(node.Name, "layer") && strings.HasSuffix(node.Name, ".conv1") {
				blockIn = cur
				shortcut = -1
			}
			isDown := strings.Contains(node.Name, ".down.")
			if isDown {
				if blockIn < 0 {
					return nil, fmt.Errorf("infer: projection conv %s outside a residual block", node.Name)
				}
				mainPath = cur
				src = blockIn
			}
			if ranks[src] != 4 {
				return nil, fmt.Errorf("infer: conv %s on rank-%d value", node.Name, ranks[src])
			}
			dims := c.dims(node.Name + ".weight")
			if len(dims) != 4 {
				return nil, fmt.Errorf("infer: conv %s weight dims %v", node.Name, dims)
			}
			for _, d := range dims {
				if d <= 0 {
					return nil, fmt.Errorf("infer: conv %s non-positive weight dims %v", node.Name, dims)
				}
			}
			k, s, pad := node.Attrs["kernel"], node.Attrs["stride"], node.Attrs["pad"]
			if k != dims[2] || k != dims[3] {
				return nil, fmt.Errorf("infer: conv %s kernel attr %d vs weight dims %v", node.Name, k, dims)
			}
			if s <= 0 {
				return nil, fmt.Errorf("infer: conv %s stride %d", node.Name, s)
			}
			if ch := chans[src]; ch >= 0 && ch != dims[1] {
				return nil, fmt.Errorf("infer: conv %s input channels %d, weight wants %d", node.Name, ch, dims[1])
			}
			oc, kdim := dims[0], dims[1]*dims[2]*dims[3]
			w, err := c.tensorOf(node.Name+".weight", oc*kdim)
			if err != nil {
				return nil, err
			}
			// The weights are copied before folding: the decoded container is
			// shared with the interpreted oracle and must stay pristine.
			wf := make([]float32, len(w))
			copy(wf, w)
			var bias []float32

			j := i + 1
			if j < len(nodes) && nodes[j].OpType == "BatchNormalization" {
				bias, err = c.foldBN(nodes[j], wf, oc, kdim)
				if err != nil {
					return nil, err
				}
				j++
			}
			relu := false
			if !isDown && j < len(nodes) && nodes[j].OpType == "Relu" {
				relu = true
				j++
			}

			out := newVal(oc, 4)
			p.ops = append(p.ops, planOp{
				kind: opConv, name: node.Name, in: src, in2: -1, out: out,
				conv: tensor.NewPackedConv(tensor.FromSlice(wf, dims...), bias, s, pad, relu),
			})
			if chans[src] < 0 {
				chans[src] = dims[1]
			}
			if p.inC < 0 && chans[0] > 0 {
				p.inC = chans[0]
			}
			if isDown {
				shortcut = out
				cur = mainPath
			} else {
				cur = out
			}
			i = j

		case "BatchNormalization":
			// Every BN the exporter emits directly follows a conv and is folded
			// by the Conv case above; a BN reached here has no producer to fold
			// into.
			return nil, fmt.Errorf("infer: BatchNormalization %s not preceded by Conv", node.Name)

		case "Relu":
			out := newVal(chans[cur], ranks[cur])
			p.ops = append(p.ops, planOp{kind: opRelu, name: node.Name, in: cur, in2: -1, out: out})
			cur = out
			i++

		case "MaxPool":
			if ranks[cur] != 4 {
				return nil, fmt.Errorf("infer: MaxPool %s on rank-%d value", node.Name, ranks[cur])
			}
			k, s := node.Attrs["kernel"], node.Attrs["stride"]
			pad, ok := node.Attrs["pad"]
			if !ok {
				return nil, fmt.Errorf("infer: MaxPool %s has no pad attribute (container predates the explicit-padding exporter; re-export it)", node.Name)
			}
			if k <= 0 || s <= 0 {
				return nil, fmt.Errorf("infer: MaxPool %s with kernel=%d stride=%d", node.Name, k, s)
			}
			out := newVal(chans[cur], 4)
			p.ops = append(p.ops, planOp{
				kind: opMaxPool, name: node.Name, in: cur, in2: -1, out: out,
				kernel: k, stride: s, pad: pad,
			})
			cur = out
			i++

		case "Add":
			sc := shortcut
			if sc < 0 {
				sc = blockIn
			}
			if sc < 0 {
				return nil, fmt.Errorf("infer: Add %s without a block input", node.Name)
			}
			if ranks[cur] != ranks[sc] {
				return nil, fmt.Errorf("infer: Add %s rank mismatch %d vs %d", node.Name, ranks[cur], ranks[sc])
			}
			if chans[cur] >= 0 && chans[sc] >= 0 && chans[cur] != chans[sc] {
				return nil, fmt.Errorf("infer: Add %s channel mismatch %d vs %d", node.Name, chans[cur], chans[sc])
			}
			relu := false
			if i+1 < len(nodes) && nodes[i+1].OpType == "Relu" {
				relu = true
				i++
			}
			out := newVal(chans[cur], ranks[cur])
			p.ops = append(p.ops, planOp{kind: opAdd, name: node.Name, in: cur, in2: sc, out: out, relu: relu})
			cur = out
			blockIn, shortcut, mainPath = -1, -1, -1
			i++

		case "GlobalAveragePool":
			if ranks[cur] != 4 {
				return nil, fmt.Errorf("infer: GlobalAveragePool %s on rank-%d value", node.Name, ranks[cur])
			}
			out := newVal(chans[cur], 2)
			p.ops = append(p.ops, planOp{kind: opGlobalAvgPool, name: node.Name, in: cur, in2: -1, out: out})
			cur = out
			i++

		case "Gemm":
			dims := c.dims(node.Name + ".weight")
			if len(dims) != 2 {
				return nil, fmt.Errorf("infer: gemm %s weight dims %v", node.Name, dims)
			}
			outF, inF := dims[0], dims[1]
			if outF <= 0 || inF <= 0 {
				return nil, fmt.Errorf("infer: gemm %s non-positive weight dims %v", node.Name, dims)
			}
			w, err := c.tensorOf(node.Name+".weight", outF*inF)
			if err != nil {
				return nil, err
			}
			b, err := c.tensorOf(node.Name+".bias", outF)
			if err != nil {
				return nil, err
			}
			if ranks[cur] != 2 {
				return nil, fmt.Errorf("infer: gemm %s on rank-%d value, want 2", node.Name, ranks[cur])
			}
			if ch := chans[cur]; ch >= 0 && ch != inF {
				return nil, fmt.Errorf("infer: gemm %s input features %d, weight wants %d", node.Name, ch, inF)
			}
			out := newVal(outF, 2)
			// The (OUT, IN) weight runs as a 1×1 pointwise conv over
			// (N, IN, 1, 1): no per-call transpose, and the panel pack is
			// built once and kept.
			p.ops = append(p.ops, planOp{
				kind: opFC, name: node.Name, in: cur, in2: -1, out: out,
				conv: tensor.NewPackedConv(tensor.FromSlice(w, outF, inF, 1, 1), b, 1, 0, false),
			})
			cur = out
			i++

		default:
			return nil, fmt.Errorf("infer: unsupported op %q (node %s)", node.OpType, node.Name)
		}
	}

	if len(p.ops) == 0 {
		return nil, fmt.Errorf("infer: container graph has no nodes")
	}
	if p.inC <= 0 {
		return nil, fmt.Errorf("infer: container has no Conv constraining the input channels")
	}
	if ranks[cur] != 2 {
		return nil, fmt.Errorf("infer: graph ends with a rank-%d value, want (N, classes)", ranks[cur])
	}
	p.classes = chans[cur]
	p.outVal = cur
	p.numVals = nextVal

	p.lastUse = make([]int, p.numVals)
	for v := range p.lastUse {
		p.lastUse[v] = -1
	}
	for idx := range p.ops {
		op := &p.ops[idx]
		p.lastUse[op.in] = idx
		if op.in2 >= 0 {
			p.lastUse[op.in2] = idx
		}
	}
	metrics.Infer.PlanCompiled()
	return p, nil
}

// compiler bundles read-only access to the decoded container during Compile.
type compiler struct {
	graph   onnxsize.GraphSpec
	weights map[string][]float32
}

func (c *compiler) dims(name string) []int {
	for _, init := range c.graph.Initializers {
		if init.Name == name {
			return init.Dims
		}
	}
	return nil
}

func (c *compiler) tensorOf(name string, wantLen int) ([]float32, error) {
	v, ok := c.weights[name]
	if !ok {
		return nil, fmt.Errorf("infer: missing initializer %s", name)
	}
	if wantLen > 0 && len(v) != wantLen {
		return nil, fmt.Errorf("infer: initializer %s has %d values, want %d", name, len(v), wantLen)
	}
	return v, nil
}

// foldBN folds a BatchNormalization node into the preceding conv's weights
// (in place, wf is the conv's private copy) and returns the resulting bias:
// w' = w·γ/√(σ²+ε) per output channel, b' = β − γ·μ/√(σ²+ε). Float64
// intermediates match the interpreted BN pass bit-for-bit close.
func (c *compiler) foldBN(node onnxsize.NodeSpec, wf []float32, oc, kdim int) ([]float32, error) {
	gamma, err := c.tensorOf(node.Name+".gamma", oc)
	if err != nil {
		return nil, err
	}
	beta, err := c.tensorOf(node.Name+".beta", oc)
	if err != nil {
		return nil, err
	}
	mean, err := c.tensorOf(node.Name+".running_mean", oc)
	if err != nil {
		return nil, err
	}
	variance, err := c.tensorOf(node.Name+".running_var", oc)
	if err != nil {
		return nil, err
	}
	eps := float64(node.Attrs["epsilon_e9"]) * 1e-9
	if eps <= 0 {
		eps = 1e-5
	}
	bias := make([]float32, oc)
	for ch := 0; ch < oc; ch++ {
		invSD := 1.0 / math.Sqrt(float64(variance[ch])+eps)
		scale := float32(float64(gamma[ch]) * invSD)
		row := wf[ch*kdim : (ch+1)*kdim]
		for i := range row {
			row[i] *= scale
		}
		bias[ch] = float32(float64(beta[ch]) - float64(gamma[ch])*float64(mean[ch])*invSD)
	}
	return bias, nil
}

// Name returns the compiled graph's name.
func (p *Plan) Name() string { return p.name }

// InputChannels returns the channel count the model expects.
func (p *Plan) InputChannels() int { return p.inC }

// Classes returns the logit width the plan produces.
func (p *Plan) Classes() int { return p.classes }

// Precision returns the plan's numeric mode. Plans predating the field
// (zero value) are fp32.
func (p *Plan) Precision() Precision {
	if p.precision == "" {
		return PrecisionFP32
	}
	return p.precision
}

// InputScale returns the input activation scale of an int8 plan (0 for
// fp32 plans).
func (p *Plan) InputScale() float32 { return p.inScale }

// OpCount returns the number of fused ops the plan executes per forward —
// observably smaller than the node count thanks to Conv+BN+ReLU and
// Add+ReLU fusion.
func (p *Plan) OpCount() int { return len(p.ops) }

// getSession draws a pooled session (creating one on demand) for the
// convenience executors; putSession returns it, keeping its arenas warm.
func (p *Plan) getSession() *Session {
	if s, ok := p.sessions.Get().(*Session); ok {
		return s
	}
	return p.NewSession()
}

func (p *Plan) putSession(s *Session) { p.sessions.Put(s) }

// Forward executes the plan on an (N, C, H, W) input and returns a freshly
// allocated (N, classes) logits tensor. It draws a pooled session, so it is
// safe for concurrent use; latency-critical callers that can keep a session
// per goroutine should use NewSession and Session.Forward, which returns
// arena-owned logits without the copy.
func (p *Plan) Forward(x *tensor.Tensor) (*tensor.Tensor, error) {
	s := p.getSession()
	defer p.putSession(s)
	logits, err := s.Forward(x)
	if err != nil {
		return nil, err
	}
	out := tensor.New(logits.Shape()...)
	copy(out.Data(), logits.Data())
	return out, nil
}

// Classify runs Forward and returns the argmax class per sample.
func (p *Plan) Classify(x *tensor.Tensor) ([]int, error) {
	s := p.getSession()
	defer p.putSession(s)
	logits, err := s.Forward(x)
	if err != nil {
		return nil, err
	}
	return tensor.ArgMaxRows(logits), nil
}
