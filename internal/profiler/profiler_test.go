package profiler

import (
	"strings"
	"sync"
	"testing"
	"time"
)

func TestStartStopRecordsSpan(t *testing.T) {
	p := New()
	stop := p.Start("train")
	time.Sleep(2 * time.Millisecond)
	stop()
	if p.SpanCount() != 1 {
		t.Fatalf("spans %d", p.SpanCount())
	}
	s := p.Summary()
	if len(s) != 1 || s[0].Phase != "train" || s[0].Count != 1 {
		t.Fatalf("summary %+v", s)
	}
	if s[0].Total < 2*time.Millisecond {
		t.Fatalf("total %v too small", s[0].Total)
	}
}

func TestSummaryAggregatesAndSorts(t *testing.T) {
	p := New()
	p.Record("eval", 10*time.Millisecond)
	p.Record("eval", 30*time.Millisecond)
	p.Record("data", 5*time.Millisecond)
	s := p.Summary()
	if len(s) != 2 {
		t.Fatalf("phases %d", len(s))
	}
	if s[0].Phase != "eval" {
		t.Fatalf("expected eval first (largest total), got %s", s[0].Phase)
	}
	if s[0].Count != 2 || s[0].Total != 40*time.Millisecond {
		t.Fatalf("eval stats %+v", s[0])
	}
	if s[0].Mean != 20*time.Millisecond || s[0].Max != 30*time.Millisecond {
		t.Fatalf("eval mean/max %+v", s[0])
	}
}

func TestConcurrentRecording(t *testing.T) {
	p := New()
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				stop := p.Start("worker")
				stop()
			}
		}()
	}
	wg.Wait()
	if p.SpanCount() != 400 {
		t.Fatalf("spans %d, want 400", p.SpanCount())
	}
}

func TestUtilizationBounds(t *testing.T) {
	p := New()
	p.Record("t", 2*time.Millisecond)
	time.Sleep(10 * time.Millisecond)
	u := p.Utilization(1)
	if u <= 0 || u > 1 {
		t.Fatalf("utilization %v", u)
	}
	// More workers → lower utilization for the same busy time.
	if p.Utilization(8) >= u {
		t.Fatal("utilization must fall with more workers")
	}
}

func TestRenderContainsPhases(t *testing.T) {
	p := New()
	p.Record("training", 3*time.Millisecond)
	out := p.Render()
	for _, want := range []string{"phase", "training", "wall time"} {
		if !strings.Contains(out, want) {
			t.Fatalf("render missing %q:\n%s", want, out)
		}
	}
}

func TestReset(t *testing.T) {
	p := New()
	p.Record("x", time.Millisecond)
	p.Reset()
	if p.SpanCount() != 0 {
		t.Fatal("reset did not clear spans")
	}
}
