package profiler

import (
	"fmt"
	"sync"
	"testing"
	"time"
)

// TestConcurrentRecordingAndSummary hammers every read and write path of
// the profiler from parallel goroutines. Run under -race it proves the
// serving layer can share one Profiler across batch executors.
func TestConcurrentRecordingAndSummary(t *testing.T) {
	p := New()
	const goroutines = 8
	const per = 100
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			phase := fmt.Sprintf("phase-%d", g%3)
			for i := 0; i < per; i++ {
				switch i % 4 {
				case 0:
					stop := p.Start(phase)
					stop()
				case 1:
					p.Record(phase, time.Microsecond)
				case 2:
					_ = p.Summary()
					_ = p.Utilization(goroutines)
				default:
					_ = p.SpanCount()
					_ = p.WallTime()
				}
			}
		}(g)
	}
	wg.Wait()
	// Exactly half of each goroutine's iterations record a span (cases 0
	// and 1).
	want := goroutines * per / 2
	if got := p.SpanCount(); got != want {
		t.Fatalf("span count %d, want %d", got, want)
	}
	stats := p.Summary()
	total := 0
	for _, st := range stats {
		total += st.Count
	}
	if total != want {
		t.Fatalf("summary counts %d, want %d", total, want)
	}
}

// TestConcurrentResetIsSafe interleaves Reset with recording; the only
// invariant is no race and a non-negative span count.
func TestConcurrentResetIsSafe(t *testing.T) {
	p := New()
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				p.Record("x", time.Microsecond)
				if i%10 == 0 {
					p.Reset()
				}
				_ = p.Render()
			}
		}()
	}
	wg.Wait()
	if p.SpanCount() < 0 {
		t.Fatal("negative span count")
	}
}
