// Package profiler provides the experiment-profiling facility the paper's
// §5 proposes building with NVIDIA Nsight: per-trial and per-phase timing
// and allocation accounting for NAS runs, so the experimenter can see where
// the search budget goes (data loading vs training vs evaluation) and size
// future experiments accordingly.
//
// The profiler is concurrency-safe: trials running on parallel workers
// record into per-goroutine spans that are merged on Summary.
package profiler

import (
	"fmt"
	"runtime"
	"sort"
	"strings"
	"sync"
	"time"
)

// Span is one completed timed region.
type Span struct {
	Phase    string
	Start    time.Time
	Duration time.Duration
	// AllocBytes is the goroutine-observed heap growth during the span
	// (approximate: runtime.MemStats deltas are process-wide).
	AllocBytes uint64
}

// Profiler accumulates spans.
type Profiler struct {
	mu    sync.Mutex
	spans []Span
	start time.Time
}

// New creates an empty profiler anchored at the current time.
func New() *Profiler {
	return &Profiler{start: time.Now()}
}

// Start opens a timed region for phase; call the returned stop function to
// record it. Nested and concurrent regions are fine.
func (p *Profiler) Start(phase string) (stop func()) {
	begin := time.Now()
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	allocBefore := ms.TotalAlloc
	return func() {
		runtime.ReadMemStats(&ms)
		span := Span{
			Phase:      phase,
			Start:      begin,
			Duration:   time.Since(begin),
			AllocBytes: ms.TotalAlloc - allocBefore,
		}
		p.mu.Lock()
		p.spans = append(p.spans, span)
		p.mu.Unlock()
	}
}

// Record adds an externally timed span.
func (p *Profiler) Record(phase string, d time.Duration) {
	p.mu.Lock()
	p.spans = append(p.spans, Span{Phase: phase, Start: time.Now().Add(-d), Duration: d})
	p.mu.Unlock()
}

// PhaseStats summarizes one phase.
type PhaseStats struct {
	Phase      string
	Count      int
	Total      time.Duration
	Mean       time.Duration
	Max        time.Duration
	AllocBytes uint64
}

// Summary aggregates spans per phase, ordered by descending total time.
func (p *Profiler) Summary() []PhaseStats {
	p.mu.Lock()
	defer p.mu.Unlock()
	byPhase := map[string]*PhaseStats{}
	for _, s := range p.spans {
		st, ok := byPhase[s.Phase]
		if !ok {
			st = &PhaseStats{Phase: s.Phase}
			byPhase[s.Phase] = st
		}
		st.Count++
		st.Total += s.Duration
		if s.Duration > st.Max {
			st.Max = s.Duration
		}
		st.AllocBytes += s.AllocBytes
	}
	out := make([]PhaseStats, 0, len(byPhase))
	for _, st := range byPhase {
		st.Mean = st.Total / time.Duration(st.Count)
		out = append(out, *st)
	}
	sort.Slice(out, func(a, b int) bool { return out[a].Total > out[b].Total })
	return out
}

// WallTime returns the elapsed time since the profiler was created (or
// last Reset). The anchor is read under the lock: Reset may rewrite it
// concurrently.
func (p *Profiler) WallTime() time.Duration {
	p.mu.Lock()
	start := p.start
	p.mu.Unlock()
	return time.Since(start)
}

// Utilization estimates the parallel efficiency of a run: summed span time
// divided by (wall time × workers). Values near 1 mean the worker pool
// stayed busy; low values point at serialization or load imbalance —
// exactly the signal the paper wants from Nsight profiles.
func (p *Profiler) Utilization(workers int) float64 {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	wall := p.WallTime()
	if wall <= 0 {
		return 0
	}
	p.mu.Lock()
	var busy time.Duration
	for _, s := range p.spans {
		busy += s.Duration
	}
	p.mu.Unlock()
	u := float64(busy) / (float64(wall) * float64(workers))
	if u > 1 {
		u = 1
	}
	return u
}

// Render formats the summary as an aligned report.
func (p *Profiler) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-24s %8s %12s %12s %12s %10s\n",
		"phase", "count", "total", "mean", "max", "alloc")
	for _, st := range p.Summary() {
		fmt.Fprintf(&b, "%-24s %8d %12s %12s %12s %9.1fM\n",
			st.Phase, st.Count,
			st.Total.Round(time.Microsecond),
			st.Mean.Round(time.Microsecond),
			st.Max.Round(time.Microsecond),
			float64(st.AllocBytes)/1e6)
	}
	fmt.Fprintf(&b, "wall time: %s\n", p.WallTime().Round(time.Millisecond))
	return b.String()
}

// Reset discards all recorded spans and re-anchors the wall clock.
func (p *Profiler) Reset() {
	p.mu.Lock()
	p.spans = nil
	p.start = time.Now()
	p.mu.Unlock()
}

// SpanCount returns the number of recorded spans.
func (p *Profiler) SpanCount() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return len(p.spans)
}
