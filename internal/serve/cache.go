package serve

import (
	"container/list"
	"fmt"
	"sync"

	"drainnas/internal/infer"
)

// ModelCache is an LRU cache of compiled inference plans keyed by
// architecture identity (in practice the container file name or the
// resnet.Config.Key of the exported model). One server instance can then
// serve several Pareto-front models while bounding resident weight memory —
// the serving-side analogue of the paper's memory objective.
//
// Loads are deduplicated: concurrent Gets for the same key run the loader
// once and share the result. A failed load is not cached, so a transient
// error (file not yet written, partial upload) is retried on the next Get.
type ModelCache struct {
	mu      sync.Mutex
	cap     int
	loader  func(key string) (*infer.Plan, error)
	ll      *list.List // front = most recently used; values are *cacheEntry
	entries map[string]*list.Element

	hits, misses, evictions uint64
}

type cacheEntry struct {
	key  string
	once sync.Once
	plan *infer.Plan
	err  error
}

// NewModelCache builds a cache holding at most capacity plans
// (minimum 1).
func NewModelCache(capacity int, loader func(key string) (*infer.Plan, error)) *ModelCache {
	if capacity < 1 {
		capacity = 1
	}
	if loader == nil {
		panic("serve: NewModelCache requires a loader")
	}
	return &ModelCache{
		cap:     capacity,
		loader:  loader,
		ll:      list.New(),
		entries: make(map[string]*list.Element),
	}
}

// Get returns the compiled plan for key, loading it on first use and refreshing
// its recency. Eviction drops the least-recently-used entry; an evicted
// entry still mid-load finishes loading for the goroutines already waiting
// on it, it just stops being cached.
func (c *ModelCache) Get(key string) (*infer.Plan, error) {
	c.mu.Lock()
	if el, ok := c.entries[key]; ok {
		c.ll.MoveToFront(el)
		c.hits++
		e := el.Value.(*cacheEntry)
		c.mu.Unlock()
		e.once.Do(func() { e.load(c.loader) })
		return e.plan, e.err
	}
	c.misses++
	e := &cacheEntry{key: key}
	c.entries[key] = c.ll.PushFront(e)
	for c.ll.Len() > c.cap {
		back := c.ll.Back()
		c.ll.Remove(back)
		delete(c.entries, back.Value.(*cacheEntry).key)
		c.evictions++
	}
	c.mu.Unlock()

	e.once.Do(func() { e.load(c.loader) })
	if e.err != nil {
		// Drop the failed entry so a later Get retries, but only if the
		// slot still holds this exact entry (it may have been evicted or
		// replaced meanwhile).
		c.mu.Lock()
		if el, ok := c.entries[key]; ok && el.Value.(*cacheEntry) == e {
			c.ll.Remove(el)
			delete(c.entries, key)
		}
		c.mu.Unlock()
	}
	return e.plan, e.err
}

func (e *cacheEntry) load(loader func(string) (*infer.Plan, error)) {
	defer func() {
		if r := recover(); r != nil {
			e.plan, e.err = nil, fmt.Errorf("serve: loading model %q panicked: %v", e.key, r)
		}
	}()
	e.plan, e.err = loader(e.key)
}

// Len returns the number of cached entries.
func (c *ModelCache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.ll.Len()
}

// CacheStats is a point-in-time copy of the cache counters.
type CacheStats struct {
	Len       int    `json:"len"`
	Capacity  int    `json:"capacity"`
	Hits      uint64 `json:"hits"`
	Misses    uint64 `json:"misses"`
	Evictions uint64 `json:"evictions"`
}

// Stats returns the cache counters.
func (c *ModelCache) Stats() CacheStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return CacheStats{
		Len: c.ll.Len(), Capacity: c.cap,
		Hits: c.hits, Misses: c.misses, Evictions: c.evictions,
	}
}
