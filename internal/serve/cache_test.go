package serve

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"drainnas/internal/infer"
	"drainnas/internal/metrics"
)

func TestCacheLoadsOnceAndHits(t *testing.T) {
	loader, loads := testLoader(t)
	c := NewModelCache(4, loader)
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			rt, err := c.Get("a")
			if err != nil || rt == nil {
				t.Errorf("get: %v", err)
			}
		}()
	}
	wg.Wait()
	if got := loads.Load(); got != 1 {
		t.Fatalf("loader ran %d times for one key, want 1", got)
	}
	st := c.Stats()
	if st.Len != 1 || st.Misses != 1 || st.Hits != 7 {
		t.Fatalf("stats %+v", st)
	}
}

func TestCacheEvictsLRU(t *testing.T) {
	loader, loads := testLoader(t)
	c := NewModelCache(2, loader)
	mustGet := func(key string) {
		t.Helper()
		if _, err := c.Get(key); err != nil {
			t.Fatal(err)
		}
	}
	mustGet("a")
	mustGet("b")
	mustGet("a") // refresh a: b is now LRU
	mustGet("c") // evicts b
	if got := loads.Load(); got != 3 {
		t.Fatalf("%d loads before re-get, want 3", got)
	}
	mustGet("b") // must reload
	if got := loads.Load(); got != 4 {
		t.Fatalf("%d loads after re-get of evicted key, want 4", got)
	}
	st := c.Stats()
	if st.Len != 2 || st.Evictions < 2 {
		t.Fatalf("stats %+v, want len 2 and >=2 evictions", st)
	}
}

func TestCacheFailedLoadIsRetried(t *testing.T) {
	container := tinyContainer(t, 7)
	var calls atomic.Int64
	boom := errors.New("transient")
	c := NewModelCache(2, func(key string) (*infer.Plan, error) {
		if calls.Add(1) == 1 {
			return nil, boom
		}
		return infer.LoadPlan(bytes.NewReader(container))
	})
	if _, err := c.Get("a"); !errors.Is(err, boom) {
		t.Fatalf("first get err %v, want transient error", err)
	}
	if rt, err := c.Get("a"); err != nil || rt == nil {
		t.Fatalf("retry failed: %v", err)
	}
	if calls.Load() != 2 {
		t.Fatalf("loader calls %d, want 2", calls.Load())
	}
}

func TestCachePanickingLoaderIsContained(t *testing.T) {
	c := NewModelCache(1, func(key string) (*infer.Plan, error) {
		panic("loader exploded")
	})
	if _, err := c.Get("a"); err == nil {
		t.Fatal("panicking loader produced no error")
	}
}

// TestCacheEvictionUnderServingLoad drives more distinct models than the
// cache holds through a live server: every request must still be answered
// correctly while entries churn.
func TestCacheEvictionUnderServingLoad(t *testing.T) {
	loader, _ := testLoader(t)
	stats := &metrics.ServingStats{}
	s := NewServer(loader, Options{
		MaxBatch: 4, MaxDelay: 500 * time.Microsecond,
		CacheCap: 2, Workers: 4, QueueCap: 512, Stats: stats,
	})
	defer s.Close()

	const goroutines = 6
	const perG = 12
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				model := fmt.Sprintf("model-%d", (g+i)%5)
				if _, err := s.Submit(context.Background(), model, testInput(uint64(g*50+i))); err != nil {
					t.Errorf("goroutine %d req %d (%s): %v", g, i, model, err)
				}
			}
		}(g)
	}
	wg.Wait()
	st := s.Cache().Stats()
	if st.Len > 2 {
		t.Fatalf("cache grew past its capacity: %+v", st)
	}
	if st.Evictions == 0 {
		t.Fatalf("5 models through a 2-slot cache evicted nothing: %+v", st)
	}
	if snap := stats.Snapshot(); snap.Completed != goroutines*perG {
		t.Fatalf("completed %d, want %d (%s)", snap.Completed, goroutines*perG, snap)
	}
}
