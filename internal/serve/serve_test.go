package serve

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"io/fs"
	"math"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"drainnas/internal/infer"
	"drainnas/internal/metrics"
	"drainnas/internal/onnxsize"
	"drainnas/internal/profiler"
	"drainnas/internal/resnet"
	"drainnas/internal/tensor"
)

// tinyContainer exports a minimal trained-shape model and returns its
// container bytes. Kept deliberately small so race-instrumented runs stay
// fast.
func tinyContainer(tb testing.TB, seed uint64) []byte {
	tb.Helper()
	cfg := resnet.Config{
		Channels: 3, Batch: 4, KernelSize: 3, Stride: 2, Padding: 1,
		PoolChoice: 0, InitialOutputFeature: 4, NumClasses: 2,
	}
	m, err := resnet.New(cfg, tensor.NewRNG(seed))
	if err != nil {
		tb.Fatal(err)
	}
	var buf bytes.Buffer
	if _, err := onnxsize.Export(m, &buf); err != nil {
		tb.Fatal(err)
	}
	return buf.Bytes()
}

// testLoader serves the same tiny container for every key and counts loads.
func testLoader(tb testing.TB) (func(string) (*infer.Plan, error), *atomic.Int64) {
	tb.Helper()
	container := tinyContainer(tb, 7)
	var loads atomic.Int64
	return func(key string) (*infer.Plan, error) {
		loads.Add(1)
		return infer.LoadPlan(bytes.NewReader(container))
	}, &loads
}

func testInput(seed uint64) *tensor.Tensor {
	return tensor.RandNormal(tensor.NewRNG(seed), 1, 3, 16, 16)
}

func TestSubmitServesAndMatchesDirectRuntime(t *testing.T) {
	loader, _ := testLoader(t)
	rt, err := loader("m")
	if err != nil {
		t.Fatal(err)
	}
	s := NewServer(loader, Options{MaxBatch: 4, MaxDelay: time.Millisecond})
	defer s.Close()

	x := testInput(3)
	resp, err := s.Submit(context.Background(), "m", x)
	if err != nil {
		t.Fatal(err)
	}
	want, err := rt.RunBatch([]*tensor.Tensor{x})
	if err != nil {
		t.Fatal(err)
	}
	if resp.Class != want[0].Class {
		t.Fatalf("served class %d, direct runtime class %d", resp.Class, want[0].Class)
	}
	for i := range resp.Logits {
		if d := math.Abs(float64(resp.Logits[i] - want[0].Logits[i])); d > 1e-6 {
			t.Fatalf("logit %d: served %v vs direct %v", i, resp.Logits[i], want[0].Logits[i])
		}
	}
	if resp.BatchSize < 1 {
		t.Fatalf("batch size %d", resp.BatchSize)
	}
}

func TestFlushOnMaxBatch(t *testing.T) {
	loader, _ := testLoader(t)
	stats := &metrics.ServingStats{}
	// MaxDelay is far beyond the test deadline: only the size trigger can
	// flush.
	s := NewServer(loader, Options{MaxBatch: 4, MaxDelay: time.Minute, Stats: stats})
	defer s.Close()

	var wg sync.WaitGroup
	responses := make([]Response, 4)
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			resp, err := s.Submit(context.Background(), "m", testInput(uint64(i)))
			if err != nil {
				t.Errorf("submit %d: %v", i, err)
				return
			}
			responses[i] = resp
		}(i)
	}
	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	select {
	case <-done:
	case <-time.After(30 * time.Second):
		t.Fatal("size-triggered flush never happened")
	}
	snap := stats.Snapshot()
	if snap.Completed != 4 {
		t.Fatalf("completed %d, want 4 (%s)", snap.Completed, snap)
	}
	// All four waited on the same group, so at least one response rode in a
	// multi-request batch.
	maxBatch := 0
	for _, r := range responses {
		if r.BatchSize > maxBatch {
			maxBatch = r.BatchSize
		}
	}
	if maxBatch < 2 {
		t.Fatalf("no batching observed: max batch size %d", maxBatch)
	}
}

func TestFlushOnMaxDelay(t *testing.T) {
	loader, _ := testLoader(t)
	s := NewServer(loader, Options{MaxBatch: 64, MaxDelay: 2 * time.Millisecond})
	defer s.Close()
	// A single request can never hit MaxBatch; only the deadline serves it.
	resp, err := s.Submit(context.Background(), "m", testInput(1))
	if err != nil {
		t.Fatal(err)
	}
	if resp.BatchSize != 1 {
		t.Fatalf("batch size %d, want 1", resp.BatchSize)
	}
}

func TestQueueFullRejection(t *testing.T) {
	loader, _ := testLoader(t)
	stats := &metrics.ServingStats{}
	s := NewServer(loader, Options{MaxBatch: 64, MaxDelay: time.Minute, QueueCap: 3, Stats: stats})

	// Fill the queue with requests that cannot flush (size 64 batch, 1min
	// delay), then overflow it.
	var wg sync.WaitGroup
	for i := 0; i < 3; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			if _, err := s.Submit(context.Background(), "m", testInput(uint64(i))); err != nil {
				t.Errorf("queued submit %d: %v", i, err)
			}
		}(i)
	}
	waitFor(t, func() bool { return s.QueueDepth() == 3 })
	if _, err := s.Submit(context.Background(), "m", testInput(9)); !errors.Is(err, ErrQueueFull) {
		t.Fatalf("overflow submit: err %v, want ErrQueueFull", err)
	}
	// Close flushes the three queued requests; none may be lost.
	s.Close()
	wg.Wait()
	snap := stats.Snapshot()
	if snap.Completed != 3 || snap.Rejected != 1 {
		t.Fatalf("completed=%d rejected=%d, want 3/1 (%s)", snap.Completed, snap.Rejected, snap)
	}
	if _, err := s.Submit(context.Background(), "m", testInput(1)); !errors.Is(err, ErrClosed) {
		t.Fatalf("post-close submit: err %v, want ErrClosed", err)
	}
}

func TestContextCancellation(t *testing.T) {
	loader, _ := testLoader(t)
	stats := &metrics.ServingStats{}
	s := NewServer(loader, Options{MaxBatch: 64, MaxDelay: 50 * time.Millisecond, Stats: stats})
	defer s.Close()

	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Millisecond)
	defer cancel()
	if _, err := s.Submit(ctx, "m", testInput(1)); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err %v, want deadline exceeded", err)
	}
	snap := stats.Snapshot()
	if snap.Canceled != 1 {
		t.Fatalf("canceled %d, want 1 (%s)", snap.Canceled, snap)
	}
	// The stale flush must skip the canceled request without executing it.
	time.Sleep(80 * time.Millisecond)
	if got := stats.Snapshot(); got.Completed != 0 || got.Batches != 0 {
		t.Fatalf("canceled request was executed: %s", got)
	}
	if s.QueueDepth() != 0 {
		t.Fatalf("queue depth %d after cancellation", s.QueueDepth())
	}
}

func TestModelLoadErrorPropagates(t *testing.T) {
	boom := errors.New("no such model")
	s := NewServer(func(key string) (*infer.Plan, error) { return nil, boom }, Options{MaxDelay: time.Millisecond})
	defer s.Close()
	if _, err := s.Submit(context.Background(), "ghost", testInput(1)); !errors.Is(err, boom) {
		t.Fatalf("err %v, want wrapped loader error", err)
	}
	if s.QueueDepth() != 0 {
		t.Fatalf("queue depth %d after failed request", s.QueueDepth())
	}
}

// TestMissingModelIsErrModelNotFound pins the typed-error contract front ends
// rely on to choose a 404 over a 503: a loader failing with fs.ErrNotExist
// (the natural error from a filesystem-backed model dir) surfaces from Submit
// as ErrModelNotFound without losing the original chain, while transient load
// errors stay un-tagged.
func TestMissingModelIsErrModelNotFound(t *testing.T) {
	s := NewServer(func(key string) (*infer.Plan, error) {
		switch key {
		case "ghost":
			return nil, fmt.Errorf("open models/%s.dnnx: %w", key, fs.ErrNotExist)
		case "tagged":
			return nil, fmt.Errorf("registry: %w", ErrModelNotFound)
		default:
			return nil, errors.New("disk on fire")
		}
	}, Options{MaxDelay: time.Millisecond})
	defer s.Close()

	_, err := s.Submit(context.Background(), "ghost", testInput(1))
	if !errors.Is(err, ErrModelNotFound) {
		t.Fatalf("fs.ErrNotExist load: err %v, want ErrModelNotFound", err)
	}
	if !errors.Is(err, fs.ErrNotExist) {
		t.Fatalf("fs.ErrNotExist load: err %v lost the original chain", err)
	}
	if _, err := s.Submit(context.Background(), "tagged", testInput(1)); !errors.Is(err, ErrModelNotFound) {
		t.Fatalf("pre-tagged load: err %v, want ErrModelNotFound", err)
	}
	if _, err := s.Submit(context.Background(), "flaky", testInput(1)); errors.Is(err, ErrModelNotFound) {
		t.Fatalf("transient load error was tagged not-found: %v", err)
	}
}

// TestConcurrentSubmitFlushClose is the central race test: many submitters
// across several models and both spatial sizes, a concurrent Close midway,
// and strict exactly-once accounting — every accepted request is served
// exactly once, everything after Close is ErrClosed, nothing is lost.
func TestConcurrentSubmitFlushClose(t *testing.T) {
	loader, _ := testLoader(t)
	stats := &metrics.ServingStats{}
	s := NewServer(loader, Options{
		MaxBatch: 4, MaxDelay: 500 * time.Microsecond,
		QueueCap: 1024, Workers: 4, CacheCap: 2, Stats: stats,
	})

	const goroutines = 8
	const perG = 20
	var served, closedErrs atomic.Int64
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				model := fmt.Sprintf("m%d", i%3)
				var in *tensor.Tensor
				if i%2 == 0 {
					in = tensor.RandNormal(tensor.NewRNG(uint64(g*1000+i)), 1, 3, 16, 16)
				} else {
					in = tensor.RandNormal(tensor.NewRNG(uint64(g*1000+i)), 1, 1, 3, 16, 16)
				}
				_, err := s.Submit(context.Background(), model, in)
				switch {
				case err == nil:
					served.Add(1)
				case errors.Is(err, ErrClosed):
					closedErrs.Add(1)
				default:
					t.Errorf("goroutine %d req %d: %v", g, i, err)
				}
			}
		}(g)
	}
	// Close midway through the storm: admitted requests must still be
	// served, later ones must fail fast with ErrClosed.
	time.Sleep(5 * time.Millisecond)
	s.Close()
	wg.Wait()

	snap := stats.Snapshot()
	if int64(snap.Completed) != served.Load() {
		t.Fatalf("stats completed %d, callers served %d", snap.Completed, served.Load())
	}
	if served.Load()+closedErrs.Load() != goroutines*perG {
		t.Fatalf("served %d + closed %d != %d submitted", served.Load(), closedErrs.Load(), goroutines*perG)
	}
	if snap.Accepted != snap.Completed {
		t.Fatalf("accepted %d != completed %d: requests lost or duplicated (%s)",
			snap.Accepted, snap.Completed, snap)
	}
	// Batch accounting must agree with per-request accounting: summed batch
	// sizes equal completed requests (no double execution).
	if snap.Batches > 0 && uint64(snap.MeanBatch*float64(snap.Batches)+0.5) != snap.Completed {
		t.Fatalf("batch-size sum %.1f != completed %d", snap.MeanBatch*float64(snap.Batches), snap.Completed)
	}
	if snap.QueueDepth != 0 {
		t.Fatalf("queue depth %d after close", snap.QueueDepth)
	}
}

// TestConcurrentCancellationStorm mixes short-deadline and patient
// submitters; the invariant is exact partitioning of accepted requests into
// completed and canceled, with the queue fully drained.
func TestConcurrentCancellationStorm(t *testing.T) {
	loader, _ := testLoader(t)
	stats := &metrics.ServingStats{}
	s := NewServer(loader, Options{MaxBatch: 8, MaxDelay: time.Millisecond, QueueCap: 1024, Stats: stats})

	var wg sync.WaitGroup
	for g := 0; g < 6; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 15; i++ {
				ctx := context.Background()
				cancel := context.CancelFunc(func() {})
				if i%3 == 0 {
					ctx, cancel = context.WithTimeout(ctx, time.Duration(g%2)*time.Millisecond)
				}
				_, err := s.Submit(ctx, "m", testInput(uint64(g*100+i)))
				cancel()
				if err != nil && !errors.Is(err, context.DeadlineExceeded) {
					t.Errorf("goroutine %d req %d: %v", g, i, err)
				}
			}
		}(g)
	}
	wg.Wait()
	s.Close()
	snap := stats.Snapshot()
	if snap.Completed+snap.Canceled != snap.Accepted {
		t.Fatalf("completed %d + canceled %d != accepted %d (%s)",
			snap.Completed, snap.Canceled, snap.Accepted, snap)
	}
	if snap.QueueDepth != 0 {
		t.Fatalf("queue depth %d after drain", snap.QueueDepth)
	}
}

func TestProfilerRecordsServePhases(t *testing.T) {
	loader, _ := testLoader(t)
	prof := profiler.New()
	s := NewServer(loader, Options{MaxDelay: time.Millisecond, Profiler: prof})
	if _, err := s.Submit(context.Background(), "m", testInput(2)); err != nil {
		t.Fatal(err)
	}
	s.Close()
	phases := map[string]bool{}
	for _, st := range prof.Summary() {
		phases[st.Phase] = true
	}
	if !phases["serve/load"] || !phases["serve/forward"] {
		t.Fatalf("profiler phases %v, want serve/load and serve/forward", phases)
	}
}

func TestCloseIsIdempotent(t *testing.T) {
	loader, _ := testLoader(t)
	s := NewServer(loader, Options{})
	var wg sync.WaitGroup
	for i := 0; i < 3; i++ {
		wg.Add(1)
		go func() { defer wg.Done(); s.Close() }()
	}
	wg.Wait()
}

// groupCount reads the live size of the batching queue map.
func groupCount(s *Server) int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.groups)
}

// TestGroupsDoNotLeak is the regression test for the unbounded-queue-map bug:
// empty batchGroup entries used to stay in s.groups forever, one per distinct
// (model, H, W) ever seen, so a client cycling spatial sizes grew the map
// without bound. A group must now live only while it holds queued requests —
// and a pre-expired context must not reach the queue map at all.
func TestGroupsDoNotLeak(t *testing.T) {
	loader, loads := testLoader(t)
	stats := &metrics.ServingStats{}
	// MaxDelay far beyond the test's lifetime: groups are cut only by Close,
	// which keeps the cancel-while-queued leg below deterministic.
	s := NewServer(loader, Options{
		MaxBatch: 64, MaxDelay: time.Minute, QueueCap: 1 << 20, Stats: stats,
	})
	defer s.Close()

	// Leg 1: a context that expired before Submit never enters the queue —
	// no group incarnation, no stats, no model load. 10k distinct (H, W)
	// keys would each have leaked a map entry under the old behavior.
	expired, cancel := context.WithCancel(context.Background())
	cancel()
	const distinct = 10000
	for i := 0; i < distinct; i++ {
		h, w := 1+i%100, 1+i/100
		if _, err := s.Submit(expired, "m", tensor.New(1, h, w)); !errors.Is(err, context.Canceled) {
			t.Fatalf("submit %d: err %v, want context.Canceled", i, err)
		}
	}
	if n := groupCount(s); n != 0 {
		t.Fatalf("pre-expired submissions created %d groups", n)
	}
	if snap := stats.Snapshot(); snap.Accepted != 0 || snap.Canceled != 0 || snap.QueueDepth != 0 {
		t.Fatalf("pre-expired submissions touched stats: %s", snap)
	}

	// Leg 2: requests canceled while queued. Each submitter blocks until its
	// context is cut; the canceled pendings stay in their groups until Close
	// cuts the batches, at which point the executor must claim nothing.
	const queued = 8
	ctx, cancelQueued := context.WithCancel(context.Background())
	var wg sync.WaitGroup
	errs := make([]error, queued)
	for i := 0; i < queued; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			_, errs[i] = s.Submit(ctx, "m", tensor.New(1, 4+i, 4+i))
		}(i)
	}
	waitFor(t, func() bool { return groupCount(s) == queued })
	cancelQueued()
	wg.Wait()
	for i, err := range errs {
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("queued submit %d: err %v, want context.Canceled", i, err)
		}
	}
	s.Close()
	if n := groupCount(s); n != 0 {
		t.Fatalf("%d groups survive Close", n)
	}
	if n := loads.Load(); n != 0 {
		t.Fatalf("canceled-only traffic loaded models %d times", n)
	}
	snap := stats.Snapshot()
	if snap.Canceled != queued || snap.QueueDepth != 0 {
		t.Fatalf("canceled=%d depth=%d, want %d/0 (%s)", snap.Canceled, snap.QueueDepth, queued, snap)
	}
}

// TestGroupsDeletedAfterServing checks the live-traffic side of the same
// invariant: served groups leave the map too, and a reused key gets a fresh
// incarnation that still serves correctly.
func TestGroupsDeletedAfterServing(t *testing.T) {
	loader, _ := testLoader(t)
	s := NewServer(loader, Options{MaxBatch: 64, MaxDelay: time.Millisecond})
	defer s.Close()

	for round := 0; round < 3; round++ {
		for shape := 0; shape < 4; shape++ {
			size := 8 + 4*shape
			in := tensor.RandNormal(tensor.NewRNG(uint64(round*10+shape)), 1, 3, size, size)
			if _, err := s.Submit(context.Background(), "m", in); err != nil {
				t.Fatalf("round %d shape %d: %v", round, shape, err)
			}
		}
		// Every submitted request has been answered, so every group was cut
		// and deleted — nothing waits for a timer here.
		if n := groupCount(s); n != 0 {
			t.Fatalf("round %d: %d groups linger after all responses", round, n)
		}
	}
}

// TestStaleTimerCannotFlushLaterIncarnation pins the generation guard: a
// MaxDelay timer armed for one incarnation of a key must be a no-op against a
// later incarnation, even though both lived under the same (model, H, W).
func TestStaleTimerCannotFlushLaterIncarnation(t *testing.T) {
	loader, _ := testLoader(t)
	s := NewServer(loader, Options{MaxBatch: 64, MaxDelay: time.Minute})
	defer s.Close()

	done := make(chan error, 1)
	go func() {
		_, err := s.Submit(context.Background(), "m", testInput(1))
		done <- err
	}()
	key := groupKey{model: "m", h: 16, w: 16}
	waitFor(t, func() bool {
		s.mu.Lock()
		defer s.mu.Unlock()
		return s.groups[key] != nil
	})
	s.mu.Lock()
	gen := s.groups[key].gen
	s.mu.Unlock()

	// A stale generation (as a timer from a previous incarnation would carry)
	// must not cut the batch.
	s.flushTimer(key, gen+1)
	if groupCount(s) != 1 {
		t.Fatal("stale-generation flush cut a live group")
	}
	select {
	case err := <-done:
		t.Fatalf("request served by stale flush (err=%v)", err)
	case <-time.After(10 * time.Millisecond):
	}

	// The matching generation flushes it.
	s.flushTimer(key, gen)
	select {
	case err := <-done:
		if err != nil {
			t.Fatal(err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("matching-generation flush did not serve the request")
	}
	if groupCount(s) != 0 {
		t.Fatalf("%d groups after flush", groupCount(s))
	}
}

// TestLoadTracksSubmitCompleteExactly is the regression test for the
// in-flight accessor the routing tier reads on every pick: Load must move in
// lockstep with admissions and departures — +1 per admitted Submit, -1 per
// completion, failure or cancellation — never drifting from QueueDepth, and
// reading 0 at quiescence. Before Load existed the router had to scrape a
// full stats snapshot (mutex + map copy) per routing decision.
func TestLoadTracksSubmitCompleteExactly(t *testing.T) {
	loader, _ := testLoader(t)
	s := NewServer(loader, Options{MaxBatch: 64, MaxDelay: time.Minute, QueueCap: 64})

	if got := s.Load(); got != 0 {
		t.Fatalf("fresh server Load() = %d, want 0", got)
	}

	// Queue requests that cannot flush (size-64 batch, 1-minute delay): Load
	// must count each admission exactly once.
	const queued = 5
	var wg sync.WaitGroup
	for i := 0; i < queued; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			if _, err := s.Submit(context.Background(), "m", testInput(uint64(i))); err != nil {
				t.Errorf("queued submit %d: %v", i, err)
			}
		}(i)
		waitFor(t, func() bool { return s.Load() == int64(i+1) })
		if got, want := s.Load(), int64(s.QueueDepth()); got != want {
			t.Fatalf("Load() = %d diverged from QueueDepth() = %d", got, want)
		}
	}

	// A canceled waiter decrements exactly once.
	ctx, cancel := context.WithCancel(context.Background())
	cancelDone := make(chan error, 1)
	go func() {
		_, err := s.Submit(ctx, "m", testInput(99))
		cancelDone <- err
	}()
	waitFor(t, func() bool { return s.Load() == queued+1 })
	cancel()
	if err := <-cancelDone; !errors.Is(err, context.Canceled) {
		t.Fatalf("canceled submit: err %v", err)
	}
	waitFor(t, func() bool { return s.Load() == queued })

	// Close flushes the queued batch; every completion decrements, back to 0.
	s.Close()
	wg.Wait()
	if got := s.Load(); got != 0 {
		t.Fatalf("Load() = %d after drain, want 0", got)
	}
	if got := s.QueueDepth(); got != 0 {
		t.Fatalf("QueueDepth() = %d after drain, want 0", got)
	}

	// Failure path: a failing loader must also decrement.
	boom := errors.New("disk on fire")
	sf := NewServer(func(string) (*infer.Plan, error) { return nil, boom }, Options{MaxDelay: time.Millisecond})
	defer sf.Close()
	if _, err := sf.Submit(context.Background(), "m", testInput(1)); !errors.Is(err, boom) {
		t.Fatalf("failing submit: err %v", err)
	}
	if got := sf.Load(); got != 0 {
		t.Fatalf("Load() = %d after failed request, want 0", got)
	}
}

func waitFor(t *testing.T, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(200 * time.Microsecond)
	}
	t.Fatal("condition never reached")
}
