// Package serve is the deployment-side serving substrate: a dynamic
// micro-batching inference server core over the standalone runtime in
// internal/infer. It is the step from the paper's single-image
// edge-deployment story toward the ROADMAP north star of serving heavy
// request traffic: incoming requests are collected into batches (flushed
// when a batch fills or a deadline expires), executed by a bounded worker
// pool through Plan.RunBatch so conv/matmul overhead amortizes, and
// admission-controlled by a bounded queue with typed backpressure errors.
//
// The pieces:
//
//   - Server.Submit enqueues one request and blocks until its response,
//     a typed rejection (ErrQueueFull, ErrClosed) or context cancellation.
//   - Requests are grouped by (model, H, W) so each flush stacks into one
//     forward pass; a per-group timer bounds added latency by MaxDelay.
//   - A ModelCache (LRU, deduplicated loads) of compiled plans lets one
//     instance serve several Pareto-front models within a bounded
//     weight-memory budget.
//   - Counters (queue depth, batch shape, latency) land in
//     metrics.ServingStats; per-batch phases can be recorded into a
//     profiler.Profiler.
//
// Exactly-once execution: each request is claimed either by the batch
// executor or by its canceling waiter via an atomic compare-and-swap, so a
// request is never lost and never runs twice.
package serve

import (
	"context"
	"errors"
	"fmt"
	"io/fs"
	"sync"
	"sync/atomic"
	"time"

	"drainnas/internal/infer"
	"drainnas/internal/metrics"
	"drainnas/internal/parallel"
	"drainnas/internal/profiler"
	"drainnas/internal/tensor"
)

// Typed admission and lookup errors, so front ends can map them to
// transport-level codes (HTTP 429 / 503 / 404) without string matching.
var (
	ErrQueueFull = errors.New("serve: queue full")
	ErrClosed    = errors.New("serve: server closed")
	// ErrModelNotFound marks a loader failure that means the model does not
	// exist (as opposed to a transient load error worth retrying): loaders
	// should return an error wrapping fs.ErrNotExist or ErrModelNotFound
	// itself. Front ends map it to 404 where transient failures stay 5xx.
	ErrModelNotFound = errors.New("serve: model not found")
)

// Options configures a Server. The zero value gets sensible defaults.
type Options struct {
	// MaxBatch flushes a group as soon as it holds this many requests
	// (default 8).
	MaxBatch int
	// MaxDelay flushes a non-empty group this long after its first request
	// arrived, bounding the latency cost of batching (default 2ms).
	MaxDelay time.Duration
	// QueueCap bounds the number of admitted-but-unfinished requests;
	// Submit returns ErrQueueFull beyond it (default 256).
	QueueCap int
	// Workers sizes the execution pool (default parallel.DefaultWorkers).
	Workers int
	// CacheCap bounds the number of resident model runtimes (default 4).
	CacheCap int
	// Stats receives request/batch counters; a fresh ServingStats is
	// created when nil.
	Stats *metrics.ServingStats
	// Profiler, when non-nil, records per-batch model-load and forward
	// phases.
	Profiler *profiler.Profiler
}

func (o Options) withDefaults() Options {
	if o.MaxBatch <= 0 {
		o.MaxBatch = 8
	}
	if o.MaxDelay <= 0 {
		o.MaxDelay = 2 * time.Millisecond
	}
	if o.QueueCap <= 0 {
		o.QueueCap = 256
	}
	if o.Workers <= 0 {
		o.Workers = parallel.DefaultWorkers
	}
	if o.CacheCap <= 0 {
		o.CacheCap = 4
	}
	if o.Stats == nil {
		o.Stats = &metrics.ServingStats{}
	}
	return o
}

// Response is one served request's result.
type Response struct {
	// Model is the cache key the request ran under.
	Model string
	// Class is the predicted class, Logits the raw scores.
	Class  int
	Logits []float32
	// BatchSize is the number of requests in the executed batch this
	// request rode in — the amortization the batcher achieved.
	BatchSize int
	// Queued is the time spent waiting for the batch to start; Total the
	// full admission-to-response latency.
	Queued time.Duration
	Total  time.Duration
}

// Request lifecycle states; transitions are CAS-guarded so exactly one
// party (executor or canceling waiter) claims each request.
const (
	stateQueued int32 = iota
	stateCanceled
	stateClaimed
)

type pending struct {
	input    *tensor.Tensor
	state    atomic.Int32
	enqueued time.Time
	done     chan result // buffered: executor never blocks on delivery
}

type result struct {
	resp Response
	err  error
}

// groupKey identifies one batchable stream: same model, same spatial size.
type groupKey struct {
	model string
	h, w  int
}

type batchGroup struct {
	reqs []*pending
	// gen is drawn from the server-wide genSeq when the group is created, so
	// it is unique across every incarnation of every key. A MaxDelay timer
	// captures its group's gen; after the batch is cut (and the group deleted
	// from the map) a stale timer finds either no group or a later
	// incarnation with a different gen, and becomes a no-op either way —
	// it can never flush a newer group's batch early.
	gen uint64
}

// Server is the batching inference server. Construct with NewServer,
// release with Close.
type Server struct {
	opts  Options
	cache *ModelCache
	pool  *parallel.Pool

	mu     sync.Mutex
	groups map[groupKey]*batchGroup
	genSeq uint64 // next group generation; never reused across incarnations
	depth  int    // admitted-but-unfinished requests
	closed bool

	// load mirrors depth as a lock-free counter so routing tiers can read a
	// replica's in-flight count on every pick without contending on mu or
	// allocating a stats snapshot. It moves in lockstep with depth: +1 on
	// admission, -1 when the request leaves (completed, failed or canceled).
	load atomic.Int64

	// dispatchers tracks flushes between taking a batch and handing it to
	// the pool, so Close can drain them before closing the pool.
	dispatchers sync.WaitGroup
}

// NewServer builds a server whose models come from loader (keyed by the
// Request model string; the empty key is legal if the loader accepts it).
// The loader returns compiled plans — immutable and shared across every
// batch that runs the model.
func NewServer(loader func(key string) (*infer.Plan, error), opts Options) *Server {
	opts = opts.withDefaults()
	return &Server{
		opts:   opts,
		cache:  NewModelCache(opts.CacheCap, loader),
		pool:   parallel.NewPool(opts.Workers),
		groups: make(map[groupKey]*batchGroup),
	}
}

// Stats returns the server's counter sink.
func (s *Server) Stats() *metrics.ServingStats { return s.opts.Stats }

// Cache returns the model cache (for stats endpoints).
func (s *Server) Cache() *ModelCache { return s.cache }

// Submit enqueues one single-image request — input is (C, H, W) or
// (1, C, H, W) — and blocks until it is served, rejected or canceled.
// Requests for the same model and spatial size are batched together.
func (s *Server) Submit(ctx context.Context, model string, input *tensor.Tensor) (Response, error) {
	if input == nil {
		return Response{}, fmt.Errorf("serve: nil input")
	}
	if err := ctx.Err(); err != nil {
		// An already-expired context never enters the queue: admitting it
		// would only burn batch capacity on a result nobody is waiting for.
		return Response{}, err
	}
	var h, w int
	switch input.NDim() {
	case 3:
		h, w = input.Dim(1), input.Dim(2)
	case 4:
		if input.Dim(0) != 1 {
			return Response{}, fmt.Errorf("serve: input batch dim %d, want 1", input.Dim(0))
		}
		h, w = input.Dim(2), input.Dim(3)
	default:
		return Response{}, fmt.Errorf("serve: input must be (C,H,W) or (1,C,H,W), got %v", input.Shape())
	}
	key := groupKey{model: model, h: h, w: w}
	p := &pending{
		input:    input,
		enqueued: time.Now(),
		done:     make(chan result, 1),
	}

	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return Response{}, ErrClosed
	}
	if s.depth >= s.opts.QueueCap {
		s.mu.Unlock()
		s.opts.Stats.Rejected(model)
		return Response{}, ErrQueueFull
	}
	s.depth++
	s.load.Add(1)
	s.opts.Stats.Enqueued(model)
	g := s.groups[key]
	if g == nil {
		// A fresh incarnation: unique generation, and exactly one MaxDelay
		// timer armed for its lifetime (the group is deleted when its batch
		// is cut, so a later request starts a new incarnation + timer).
		g = &batchGroup{gen: s.genSeq}
		s.genSeq++
		s.groups[key] = g
		gen := g.gen
		time.AfterFunc(s.opts.MaxDelay, func() { s.flushTimer(key, gen) })
	}
	g.reqs = append(g.reqs, p)
	var cut []*pending
	if len(g.reqs) >= s.opts.MaxBatch {
		cut = s.takeLocked(key, g)
		s.dispatchers.Add(1)
	}
	s.mu.Unlock()

	if cut != nil {
		s.dispatch(key, cut)
	}

	select {
	case r := <-p.done:
		return r.resp, r.err
	case <-ctx.Done():
		if p.state.CompareAndSwap(stateQueued, stateCanceled) {
			// We won the claim: the executor will skip this request.
			s.opts.Stats.Canceled(model)
			s.mu.Lock()
			s.depth--
			s.mu.Unlock()
			s.load.Add(-1)
		}
		return Response{}, ctx.Err()
	}
}

// takeLocked cuts the group's current batch and deletes the group from the
// queue map — a group only lives while it holds queued requests, so the map
// stays bounded by live groups instead of growing with every distinct
// (model, H, W) key ever seen. The caller holds s.mu.
func (s *Server) takeLocked(key groupKey, g *batchGroup) []*pending {
	batch := g.reqs
	g.reqs = nil
	delete(s.groups, key)
	return batch
}

// flushTimer is the MaxDelay deadline for a group generation.
func (s *Server) flushTimer(key groupKey, gen uint64) {
	s.mu.Lock()
	g := s.groups[key]
	if g == nil || g.gen != gen || len(g.reqs) == 0 {
		// Already flushed (by size or Close), or a later incarnation.
		s.mu.Unlock()
		return
	}
	batch := s.takeLocked(key, g)
	s.dispatchers.Add(1)
	s.mu.Unlock()
	s.dispatch(key, batch)
}

// dispatch hands a cut batch to the worker pool, executing inline when the
// pool's queue is saturated — the flushing goroutine then becomes the
// worker, which is exactly the backpressure we want instead of unbounded
// goroutine growth.
func (s *Server) dispatch(key groupKey, batch []*pending) {
	defer s.dispatchers.Done()
	task := func() { s.execute(key, batch) }
	if !s.pool.TrySubmit(task) {
		task()
	}
}

// execute claims the batch's live requests, runs them as one stacked
// forward pass, and delivers per-request results.
func (s *Server) execute(key groupKey, batch []*pending) {
	claimed := batch[:0:0]
	for _, p := range batch {
		if p.state.CompareAndSwap(stateQueued, stateClaimed) {
			claimed = append(claimed, p)
		}
	}
	if len(claimed) == 0 {
		return
	}

	var stopLoad func()
	if s.opts.Profiler != nil {
		stopLoad = s.opts.Profiler.Start("serve/load")
	}
	plan, err := s.cache.Get(key.model)
	if stopLoad != nil {
		stopLoad()
	}
	if err != nil {
		if errors.Is(err, fs.ErrNotExist) && !errors.Is(err, ErrModelNotFound) {
			// Normalize filesystem-level absence to the typed sentinel so
			// front ends need only one check.
			err = errors.Join(ErrModelNotFound, err)
		}
		s.fail(key.model, claimed, fmt.Errorf("serve: model %q: %w", key.model, err))
		return
	}

	inputs := make([]*tensor.Tensor, len(claimed))
	for i, p := range claimed {
		inputs[i] = p.input
	}
	var stopFwd func()
	if s.opts.Profiler != nil {
		stopFwd = s.opts.Profiler.Start("serve/forward")
	}
	start := time.Now()
	preds, err := plan.RunBatch(inputs)
	exec := time.Since(start)
	if stopFwd != nil {
		stopFwd()
	}
	if err != nil {
		s.fail(key.model, claimed, err)
		return
	}
	s.opts.Stats.BatchDone(key.model, len(claimed), exec)

	s.mu.Lock()
	s.depth -= len(claimed)
	s.mu.Unlock()
	s.load.Add(-int64(len(claimed)))
	for i, p := range claimed {
		resp := Response{
			Model:     key.model,
			Class:     preds[i].Class,
			Logits:    preds[i].Logits,
			BatchSize: len(claimed),
			Queued:    start.Sub(p.enqueued),
			Total:     time.Since(p.enqueued),
		}
		s.opts.Stats.Completed(key.model, resp.Queued, resp.Total)
		p.done <- result{resp: resp}
	}
}

func (s *Server) fail(model string, claimed []*pending, err error) {
	s.mu.Lock()
	s.depth -= len(claimed)
	s.mu.Unlock()
	s.load.Add(-int64(len(claimed)))
	for _, p := range claimed {
		s.opts.Stats.Failed(model)
		p.done <- result{err: err}
	}
}

// QueueDepth returns the number of admitted-but-unfinished requests.
func (s *Server) QueueDepth() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.depth
}

// Load is the lock-free equivalent of QueueDepth: the number of
// admitted-but-unfinished requests, readable on every routing decision
// without taking the server mutex. It is incremented exactly once per
// admitted Submit and decremented exactly once when the request completes,
// fails, or is canceled, so at quiescence it always reads 0.
func (s *Server) Load() int64 { return s.load.Load() }

// Close flushes every pending batch, waits for in-flight work, and shuts
// the worker pool down. Requests admitted before Close still complete;
// Submit afterwards returns ErrClosed. Close is idempotent.
func (s *Server) Close() {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		s.dispatchers.Wait()
		s.pool.Close()
		return
	}
	s.closed = true
	type cutBatch struct {
		key   groupKey
		batch []*pending
	}
	var cuts []cutBatch
	for key, g := range s.groups {
		if len(g.reqs) > 0 {
			cuts = append(cuts, cutBatch{key, s.takeLocked(key, g)})
			s.dispatchers.Add(1)
		}
	}
	s.mu.Unlock()
	for _, c := range cuts {
		s.dispatch(c.key, c.batch)
	}
	s.dispatchers.Wait()
	s.pool.Close()
}
