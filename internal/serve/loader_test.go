package serve

import (
	"context"
	"errors"
	"os"
	"path/filepath"
	"testing"
	"time"

	"drainnas/internal/infer"
	"drainnas/internal/tensor"
)

// TestDirLoaderPrecisionKeys pins the "@int8" selector: one exported
// container resolves in both precisions, with the int8 form quantized at
// load time.
func TestDirLoaderPrecisionKeys(t *testing.T) {
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, "culvert.dnnx"), tinyContainer(t, 7), 0o644); err != nil {
		t.Fatal(err)
	}
	loader := DirLoader(dir)

	fplan, err := loader("culvert")
	if err != nil {
		t.Fatal(err)
	}
	if fplan.Precision() != infer.PrecisionFP32 {
		t.Fatalf("bare key precision %q", fplan.Precision())
	}

	qplan, err := loader("culvert@int8")
	if err != nil {
		t.Fatal(err)
	}
	if qplan.Precision() != infer.PrecisionInt8 {
		t.Fatalf("int8 key precision %q", qplan.Precision())
	}
	// The quantized plan must actually run.
	logits, err := qplan.Forward(tensor.RandNormal(tensor.NewRNG(3), 1, 1, 3, 16, 16))
	if err != nil {
		t.Fatal(err)
	}
	if logits.Dim(1) != 2 {
		t.Fatalf("logit shape %v", logits.Shape())
	}

	// The fp32 suffix is accepted and maps to the bare form.
	if p, err := loader("culvert@fp32"); err != nil || p.Precision() != infer.PrecisionFP32 {
		t.Fatalf("fp32-suffixed key: plan %v err %v", p, err)
	}

	// Malformed precision suffixes are not-found, not 500s.
	if _, err := loader("culvert@fp17"); !errors.Is(err, os.ErrNotExist) {
		t.Fatalf("bad precision suffix error %v, want fs.ErrNotExist", err)
	}
	if _, err := loader("@int8"); !errors.Is(err, os.ErrNotExist) {
		t.Fatalf("empty name error %v, want fs.ErrNotExist", err)
	}
}

// TestServerServesBothPrecisionsOfOneContainer runs fp32 and int8 requests
// for the same model through one Server: the cache holds the two forms as
// distinct entries and both answer.
func TestServerServesBothPrecisionsOfOneContainer(t *testing.T) {
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, "m.dnnx"), tinyContainer(t, 7), 0o644); err != nil {
		t.Fatal(err)
	}
	srv := NewServer(DirLoader(dir), Options{MaxDelay: time.Millisecond})
	defer srv.Close()

	ctx := context.Background()
	fresp, err := srv.Submit(ctx, "m", testInput(5))
	if err != nil {
		t.Fatal(err)
	}
	qresp, err := srv.Submit(ctx, "m@int8", testInput(5))
	if err != nil {
		t.Fatal(err)
	}
	if fresp.Model != "m" || qresp.Model != "m@int8" {
		t.Fatalf("response keys %q / %q", fresp.Model, qresp.Model)
	}
	if len(fresp.Logits) != 2 || len(qresp.Logits) != 2 {
		t.Fatalf("logit lengths %d / %d", len(fresp.Logits), len(qresp.Logits))
	}
	if srv.Cache().Stats().Len != 2 {
		t.Fatalf("cache holds %d entries, want 2 (one per precision)", srv.Cache().Stats().Len)
	}
}
