package serve

import (
	"fmt"
	"io/fs"
	"os"
	"path/filepath"
	"strings"

	"drainnas/internal/infer"
)

// QuantCalibSize is the chip side the loader calibrates with when it
// materializes an int8 plan from a float container — the same miniature
// geodata statistics the PTQ parity harness uses.
const QuantCalibSize = 32

// DirLoader maps model keys to compiled plans backed by .dnnx container
// files under dir. A key is the file's base name with or without the .dnnx
// extension, optionally carrying a precision selector ("culvert@int8"):
// the float container is loaded and post-training-quantized at load time,
// so one exported artifact serves both precisions and the cache holds them
// as distinct entries. Path traversal and malformed keys are rejected as
// not-found. Both cmd/servd and every in-process replica behind cmd/router
// share this loader, so a fleet over one model directory resolves keys
// identically on every replica.
func DirLoader(dir string) func(key string) (*infer.Plan, error) {
	return func(key string) (*infer.Plan, error) {
		if key == "" {
			return nil, fmt.Errorf("empty model key: %w", fs.ErrNotExist)
		}
		if strings.ContainsAny(key, `/\`) || strings.Contains(key, "..") {
			return nil, fmt.Errorf("model key %q: %w", key, fs.ErrNotExist)
		}
		name, prec, err := infer.ParseModelKey(key)
		if err != nil {
			return nil, fmt.Errorf("model key %q: %v: %w", key, err, fs.ErrNotExist)
		}
		if !strings.HasSuffix(name, ".dnnx") {
			name += ".dnnx"
		}
		f, err := os.Open(filepath.Join(dir, name))
		if err != nil {
			return nil, err
		}
		defer f.Close()
		plan, err := infer.LoadPlan(f)
		if err != nil {
			return nil, err
		}
		if prec == infer.PrecisionInt8 {
			return plan.QuantizeSynthetic(QuantCalibSize)
		}
		return plan, nil
	}
}

// ListModels returns the model keys (base names without extension) a
// DirLoader over dir would resolve, or the directory error so health
// endpoints can surface an unreadable model dir instead of reporting an
// empty-but-healthy fleet. Keys are the fp32 forms; each also resolves
// with an "@int8" suffix.
func ListModels(dir string) ([]string, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var keys []string
	for _, e := range entries {
		if !e.IsDir() && strings.HasSuffix(e.Name(), ".dnnx") {
			keys = append(keys, strings.TrimSuffix(e.Name(), ".dnnx"))
		}
	}
	return keys, nil
}
