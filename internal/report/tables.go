package report

import (
	"fmt"

	"drainnas/internal/core"
	"drainnas/internal/pareto"
)

// Table3 renders the objective value ranges over all valid trials.
func Table3(res *core.Result) *Table {
	mins, maxs := res.ObjectiveRanges()
	t := NewTable("Table 3: objective value ranges",
		"", "Inference Accuracy", "Inference Latency", "Memory Usage")
	t.AddRow("Min", F(mins[0], 2)+" %", F(mins[1], 2)+" ms", F(mins[2], 2)+" MB")
	t.AddRow("Max", F(maxs[0], 2)+" %", F(maxs[1], 2)+" ms", F(maxs[2], 2)+" MB")
	return t
}

// trialColumns is the shared Table 4/5 row layout.
func trialRow(t core.Trial, withArch bool) []string {
	c := t.Config
	row := []string{
		I(c.Channels), I(c.Batch),
		F(t.Accuracy, 2), F(t.LatencyMS, 2), F(t.LatStdMS, 2), F(t.MemoryMB, 2),
	}
	if withArch {
		row = append(row,
			I(c.KernelSize), I(c.Stride), I(c.Padding), I(c.PoolChoice),
			I(c.KernelSizePool), I(c.StridePool), I(c.InitialOutputFeature))
	}
	return row
}

// Table4 renders the non-dominated solutions with their architecture
// parameters.
func Table4(res *core.Result) *Table {
	t := NewTable("Table 4: Pareto-optimal solutions",
		"channels", "batch", "accuracy", "latency(ms)", "lat_std", "memory(MB)",
		"kernel_size", "stride", "padding", "pool_choice",
		"kernel_size_pool", "stride_pool", "initial_output_feature")
	for _, trial := range res.NonDominated() {
		t.AddRow(trialRow(trial, true)...)
	}
	return t
}

// Table5 renders the six stock ResNet-18 benchmark variants.
func Table5(baselines []core.Trial) *Table {
	t := NewTable("Table 5: evaluation on six ResNet-18 benchmark variants",
		"channels", "batch", "accuracy", "latency (ms)", "lat_std", "memory (MB)")
	for _, trial := range baselines {
		t.AddRow(trialRow(trial, false)...)
	}
	return t
}

// Figure3Data emits the full scatter data behind Figure 3: one row per
// valid trial with its three objectives and front membership.
func Figure3Data(res *core.Result) *Table {
	onFront := make(map[int]bool, len(res.FrontIdx))
	for _, i := range res.FrontIdx {
		onFront[i] = true
	}
	t := NewTable("Figure 3: Pareto front analysis data",
		"trial", "accuracy", "latency_ms", "memory_mb", "non_dominated")
	for i, trial := range res.Trials {
		nd := "0"
		if onFront[i] {
			nd = "1"
		}
		t.AddRow(I(i), F(trial.Accuracy, 2), F(trial.LatencyMS, 2), F(trial.MemoryMB, 2), nd)
	}
	return t
}

// Figure3Scatter renders the two informative 2-D projections of the
// 3-objective scatter as ASCII plots (accuracy–latency and
// accuracy–memory), marking non-dominated points.
func Figure3Scatter(res *core.Result) string {
	onFront := make(map[int]bool, len(res.FrontIdx))
	for _, i := range res.FrontIdx {
		onFront[i] = true
	}
	accs := make([]float64, len(res.Trials))
	lats := make([]float64, len(res.Trials))
	mems := make([]float64, len(res.Trials))
	for i, t := range res.Trials {
		accs[i], lats[i], mems[i] = t.Accuracy, t.LatencyMS, t.MemoryMB
	}
	return Scatter("latency (y) vs accuracy (x); * = non-dominated", accs, lats, onFront, 72, 20) +
		Scatter("memory (y) vs accuracy (x); * = non-dominated", accs, mems, onFront, 72, 20)
}

// Figure4Radars builds the radar plot data of the non-dominated solutions:
// configuration axes plus objectives, all normalized to [0, 1] within their
// search-space or observed ranges, as the paper normalizes them.
func Figure4Radars(res *core.Result) []Radar {
	front := res.NonDominated()
	if len(front) == 0 {
		return nil
	}
	// Normalize objectives over the whole trial set (the paper normalizes
	// "within their respective ranges").
	mins, maxs := res.ObjectiveRanges()
	norm := func(v, lo, hi float64) float64 {
		if hi <= lo {
			return 0.5
		}
		return (v - lo) / (hi - lo)
	}
	var radars []Radar
	for _, t := range front {
		c := t.Config
		label := fmt.Sprintf("ch=%d batch=%d pool=%d", c.Channels, c.Batch, c.PoolChoice)
		radars = append(radars, Radar{
			Label: label,
			Axes: []RadarAxis{
				{Name: "accuracy", Value: norm(t.Accuracy, mins[0], maxs[0])},
				{Name: "latency", Value: norm(t.LatencyMS, mins[1], maxs[1])},
				{Name: "memory", Value: norm(t.MemoryMB, mins[2], maxs[2])},
				{Name: "kernel_size", Value: norm(float64(c.KernelSize), 3, 7)},
				{Name: "stride", Value: norm(float64(c.Stride), 1, 2)},
				{Name: "padding", Value: norm(float64(c.Padding), 1, 3)},
				{Name: "pool_choice", Value: float64(c.PoolChoice)},
				{Name: "kernel_size_pool", Value: norm(float64(c.KernelSizePool), 0, 3)},
				{Name: "stride_pool", Value: norm(float64(c.StridePool), 0, 2)},
				{Name: "init_output_feature", Value: norm(float64(c.InitialOutputFeature), 32, 64)},
				{Name: "channels", Value: norm(float64(c.Channels), 5, 7)},
				{Name: "batch", Value: norm(float64(c.Batch), 8, 32)},
			},
		})
	}
	return radars
}

// Table2 renders the latency-predictor validation results.
func Table2(rows []Table2Row) *Table {
	t := NewTable("Table 2: hardware performance of the latency predictors",
		"Hardware name", "Device", "Framework", "±10% Accuracy")
	for _, r := range rows {
		t.AddRow(r.Name, r.Device, r.Framework, F(r.Within10Pct*100, 2)+" %")
	}
	return t
}

// Table2Row is one device's validation summary.
type Table2Row struct {
	Name        string
	Device      string
	Framework   string
	Within10Pct float64
}

// NormalizedFrontConnections returns the normalized objective vectors of
// the front members (the red-dot connections of Figure 3).
func NormalizedFrontConnections(res *core.Result) []pareto.Point {
	pts := res.Points()
	norm := pareto.Normalize(pts)
	var out []pareto.Point
	for _, i := range res.FrontIdx {
		out = append(out, norm[i])
	}
	return out
}
