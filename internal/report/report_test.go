package report

import (
	"strings"
	"testing"

	"drainnas/internal/core"
	"drainnas/internal/nas"
	"drainnas/internal/surrogate"
)

func TestTableRenderAlignment(t *testing.T) {
	tb := NewTable("demo", "a", "long-header", "c")
	tb.AddRow("1", "2", "3")
	tb.AddRow("wide-cell", "x", "y")
	out := tb.Render()
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if lines[0] != "demo" {
		t.Fatalf("title line %q", lines[0])
	}
	// Header and rows share column starts: 'long-header' col begins at the
	// same offset as '2' and 'x'.
	hIdx := strings.Index(lines[1], "long-header")
	if strings.Index(lines[3], "2") != hIdx || strings.Index(lines[4], "x") != hIdx {
		t.Fatalf("misaligned columns:\n%s", out)
	}
}

func TestTableRowArityPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewTable("t", "a", "b").AddRow("only-one")
}

func TestCSVEscaping(t *testing.T) {
	tb := NewTable("", "name", "note")
	tb.AddRow("a,b", `say "hi"`)
	csv := tb.CSV()
	want := "name,note\n\"a,b\",\"say \"\"hi\"\"\"\n"
	if csv != want {
		t.Fatalf("CSV:\n%q\nwant\n%q", csv, want)
	}
}

func TestScatterMarksHighlights(t *testing.T) {
	xs := []float64{0, 1, 2, 3}
	ys := []float64{0, 1, 2, 3}
	s := Scatter("t", xs, ys, map[int]bool{3: true}, 20, 8)
	if !strings.Contains(s, "*") || !strings.Contains(s, ".") {
		t.Fatalf("scatter missing marks:\n%s", s)
	}
	// Degenerate single point must not panic.
	_ = Scatter("one", []float64{1}, []float64{1}, nil, 10, 4)
}

func TestRadarRenderBars(t *testing.T) {
	r := Radar{Label: "sol", Axes: []RadarAxis{{Name: "acc", Value: 1}, {Name: "lat", Value: 0}}}
	out := r.Render()
	if !strings.Contains(out, "####################") {
		t.Fatalf("full bar missing:\n%s", out)
	}
	if !strings.Contains(out, "acc") || !strings.Contains(out, "lat") {
		t.Fatalf("axis names missing:\n%s", out)
	}
}

func smallResult(t *testing.T) *core.Result {
	t.Helper()
	sp := nas.PaperSpace()
	sp.Paddings = []int{1}
	sp.InitialFeatures = []int{32, 64}
	res, err := core.Run(core.Options{
		Space:     sp,
		Combos:    []nas.InputCombo{{Channels: 5, Batch: 16}, {Channels: 7, Batch: 16}},
		Evaluator: nas.SurrogateEvaluator{Model: surrogate.Default()},
	})
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func TestPaperTablesRender(t *testing.T) {
	res := smallResult(t)
	t3 := Table3(res).Render()
	for _, want := range []string{"Min", "Max", "%", "ms", "MB"} {
		if !strings.Contains(t3, want) {
			t.Fatalf("Table3 missing %q:\n%s", want, t3)
		}
	}
	t4 := Table4(res)
	if len(t4.Rows) != len(res.FrontIdx) {
		t.Fatalf("Table4 rows %d, front %d", len(t4.Rows), len(res.FrontIdx))
	}
	if !strings.Contains(t4.Render(), "initial_output_feature") {
		t.Fatal("Table4 missing architecture columns")
	}

	baselines, err := core.Baselines(nil, nas.SurrogateEvaluator{Model: surrogate.Default()}, 0)
	if err != nil {
		t.Fatal(err)
	}
	t5 := Table5(baselines)
	if len(t5.Rows) != 6 {
		t.Fatalf("Table5 rows %d", len(t5.Rows))
	}
}

func TestFigureEmitters(t *testing.T) {
	res := smallResult(t)
	f3 := Figure3Data(res)
	if len(f3.Rows) != len(res.Trials) {
		t.Fatalf("Figure3 rows %d, trials %d", len(f3.Rows), len(res.Trials))
	}
	nd := 0
	for _, row := range f3.Rows {
		if row[4] == "1" {
			nd++
		}
	}
	if nd != len(res.FrontIdx) {
		t.Fatalf("Figure3 marks %d non-dominated, front has %d", nd, len(res.FrontIdx))
	}
	if s := Figure3Scatter(res); !strings.Contains(s, "*") {
		t.Fatal("Figure3 scatter has no front marks")
	}
	radars := Figure4Radars(res)
	if len(radars) != len(res.FrontIdx) {
		t.Fatalf("Figure4 radars %d", len(radars))
	}
	for _, r := range radars {
		if len(r.Axes) != 12 {
			t.Fatalf("radar axes %d, want 12", len(r.Axes))
		}
		for _, a := range r.Axes {
			if a.Value < 0 || a.Value > 1 {
				t.Fatalf("axis %s value %v out of [0,1]", a.Name, a.Value)
			}
		}
	}
	conns := NormalizedFrontConnections(res)
	if len(conns) != len(res.FrontIdx) {
		t.Fatalf("connections %d", len(conns))
	}
}

func TestTable2Render(t *testing.T) {
	rows := []Table2Row{
		{Name: "cortexA76cpu", Device: "Pixel4", Framework: "TFLite v2.1", Within10Pct: 0.99},
		{Name: "myriadvpu", Device: "NCS2", Framework: "OpenVINO", Within10Pct: 0.834},
	}
	out := Table2(rows).Render()
	if !strings.Contains(out, "99.00 %") || !strings.Contains(out, "83.40 %") {
		t.Fatalf("Table2:\n%s", out)
	}
}

func TestHistogramBasics(t *testing.T) {
	values := []float64{1, 1, 1, 2, 2, 9}
	out := Histogram("accs", values, 4, 20)
	if !strings.Contains(out, "n=6") {
		t.Fatalf("missing count:\n%s", out)
	}
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 5 { // title + 4 buckets
		t.Fatalf("lines %d:\n%s", len(lines), out)
	}
	// First bucket holds the three 1s → the longest bar.
	if !strings.Contains(lines[1], "####################") {
		t.Fatalf("first bucket bar:\n%s", out)
	}
	// Empty input must not panic.
	if got := Histogram("empty", nil, 4, 20); !strings.Contains(got, "n=0") {
		t.Fatalf("empty histogram:\n%s", got)
	}
	// Constant values land in one bucket.
	flat := Histogram("flat", []float64{5, 5, 5}, 3, 10)
	if !strings.Contains(flat, "3") {
		t.Fatalf("flat histogram:\n%s", flat)
	}
}

func TestMarkdownRendering(t *testing.T) {
	tb := NewTable("demo", "a", "b")
	tb.AddRow("1", "x|y")
	md := tb.Markdown()
	for _, want := range []string{"**demo**", "| a | b |", "|---|---|", `x\|y`} {
		if !strings.Contains(md, want) {
			t.Fatalf("markdown missing %q:\n%s", want, md)
		}
	}
}
