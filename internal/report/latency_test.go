package report

import (
	"strings"
	"testing"
	"time"

	"drainnas/internal/metrics"
)

func TestLatencyBars(t *testing.T) {
	h := metrics.NewHistogram()
	for i := 0; i < 90; i++ {
		h.Observe(2 * time.Millisecond)
	}
	for i := 0; i < 10; i++ {
		h.Observe(40 * time.Millisecond)
	}
	out := LatencyBars("serving latency", h.Snapshot(), 40)
	if !strings.Contains(out, "serving latency  (n=100)") {
		t.Fatalf("missing title/count:\n%s", out)
	}
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	// Title + 2 occupied buckets + quantile summary.
	if len(lines) != 4 {
		t.Fatalf("want 4 lines, got %d:\n%s", len(lines), out)
	}
	big, small := strings.Count(lines[1], "#"), strings.Count(lines[2], "#")
	if big != 40 {
		t.Fatalf("dominant bucket bar %d, want full width 40:\n%s", big, out)
	}
	if small < 1 || small >= big {
		t.Fatalf("minor bucket bar %d not in (0, %d):\n%s", small, big, out)
	}
	if !strings.Contains(lines[3], "p50") || !strings.Contains(lines[3], "p99") || !strings.Contains(lines[3], "max") {
		t.Fatalf("missing quantile summary:\n%s", out)
	}
}

func TestLatencyBarsEmpty(t *testing.T) {
	out := LatencyBars("nothing", metrics.HistogramSnapshot{}, 40)
	if !strings.Contains(out, "(n=0)") || strings.Contains(out, "#") {
		t.Fatalf("empty snapshot rendering:\n%s", out)
	}
}

func TestDurLabelUnits(t *testing.T) {
	cases := map[time.Duration]string{
		500 * time.Microsecond: "500µs",
		2 * time.Millisecond:   "2ms",
		3 * time.Second:        "3s",
	}
	for d, want := range cases {
		if got := durLabel(d); got != want {
			t.Fatalf("durLabel(%v) = %q, want %q", d, got, want)
		}
	}
}
