package report

import (
	"fmt"
	"strings"
	"time"

	"drainnas/internal/metrics"
)

// LatencyBars renders a metrics.HistogramSnapshot as an ASCII latency
// distribution: one proportional bar per occupied log-spaced bucket plus a
// quantile summary line. It is the terminal-side view of the same histogram
// servd exports on /metrics, shared by cmd/deploy -load and the nascli sweep
// summary.
func LatencyBars(title string, snap metrics.HistogramSnapshot, width int) string {
	if width < 10 {
		width = 40
	}
	var b strings.Builder
	fmt.Fprintf(&b, "%s  (n=%d)\n", title, snap.Count)
	if snap.Count == 0 {
		return b.String()
	}
	var maxCount uint64
	for _, bk := range snap.Buckets {
		if bk.Count > maxCount {
			maxCount = bk.Count
		}
	}
	for _, bk := range snap.Buckets {
		upper := durLabel(bk.Upper)
		if bk.Upper > snap.Max {
			// The overflow/top bucket is open-ended; the observed max is the
			// honest upper edge.
			upper = durLabel(snap.Max)
		}
		bars := int(bk.Count * uint64(width) / maxCount)
		if bars == 0 {
			bars = 1 // occupied buckets stay visible
		}
		fmt.Fprintf(&b, "  %9s-%-9s %7d %s\n", durLabel(bk.Lower), upper, bk.Count, strings.Repeat("#", bars))
	}
	fmt.Fprintf(&b, "  p50 %.2fms  p90 %.2fms  p95 %.2fms  p99 %.2fms  max %.2fms\n",
		snap.P50MS, snap.P90MS, snap.P95MS, snap.P99MS, snap.MaxMS)
	return b.String()
}

// durLabel renders a bucket edge compactly (µs under 1ms, ms under 1s,
// seconds above).
func durLabel(d time.Duration) string {
	switch {
	case d < time.Millisecond:
		return fmt.Sprintf("%dµs", d.Microseconds())
	case d < time.Second:
		return fmt.Sprintf("%.3gms", float64(d)/float64(time.Millisecond))
	default:
		return fmt.Sprintf("%.3gs", d.Seconds())
	}
}
