// Package report renders the paper's tables and figures from pipeline
// results: aligned ASCII tables for the terminal, CSV for downstream
// plotting, an ASCII scatter for Figure 3, and the normalized radar axes of
// Figure 4.
package report

import (
	"fmt"
	"strings"
)

// Table is a simple column-aligned text table with optional CSV export.
type Table struct {
	Title  string
	Header []string
	Rows   [][]string
}

// NewTable creates a table with the given title and column headers.
func NewTable(title string, header ...string) *Table {
	return &Table{Title: title, Header: header}
}

// AddRow appends a row; it must match the header arity.
func (t *Table) AddRow(cells ...string) {
	if len(cells) != len(t.Header) {
		panic(fmt.Sprintf("report: row arity %d, header arity %d", len(cells), len(t.Header)))
	}
	t.Rows = append(t.Rows, cells)
}

// Render produces the aligned text representation.
func (t *Table) Render() string {
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, c := range row {
			if len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var b strings.Builder
	if t.Title != "" {
		fmt.Fprintf(&b, "%s\n", t.Title)
	}
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], c)
		}
		b.WriteByte('\n')
	}
	writeRow(t.Header)
	total := len(widths)*2 - 2
	for _, w := range widths {
		total += w
	}
	b.WriteString(strings.Repeat("-", total))
	b.WriteByte('\n')
	for _, row := range t.Rows {
		writeRow(row)
	}
	return b.String()
}

// CSV produces an RFC-4180-ish CSV (quotes fields containing separators).
func (t *Table) CSV() string {
	var b strings.Builder
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteByte(',')
			}
			if strings.ContainsAny(c, ",\"\n") {
				c = "\"" + strings.ReplaceAll(c, "\"", "\"\"") + "\""
			}
			b.WriteString(c)
		}
		b.WriteByte('\n')
	}
	writeRow(t.Header)
	for _, row := range t.Rows {
		writeRow(row)
	}
	return b.String()
}

// F formats a float with the given decimals — the cell helper used all over
// the table builders.
func F(v float64, decimals int) string {
	return fmt.Sprintf("%.*f", decimals, v)
}

// I formats an int cell.
func I(v int) string { return fmt.Sprintf("%d", v) }

// Scatter renders a crude ASCII scatter plot of (x, y) points on a
// width×height character grid, marking highlighted indices with '*' and the
// rest with '·' — the terminal rendition of Figure 3's projections.
func Scatter(title string, xs, ys []float64, highlight map[int]bool, width, height int) string {
	if len(xs) != len(ys) {
		panic(fmt.Sprintf("report: scatter arity mismatch %d vs %d", len(xs), len(ys)))
	}
	if width < 8 {
		width = 8
	}
	if height < 4 {
		height = 4
	}
	minX, maxX := minMax(xs)
	minY, maxY := minMax(ys)
	grid := make([][]byte, height)
	for r := range grid {
		grid[r] = []byte(strings.Repeat(" ", width))
	}
	plot := func(i int, mark byte) {
		x := scaleTo(xs[i], minX, maxX, width-1)
		y := height - 1 - scaleTo(ys[i], minY, maxY, height-1)
		grid[y][x] = mark
	}
	// Plain points first, then highlights so they stay visible.
	for i := range xs {
		if !highlight[i] {
			plot(i, '.')
		}
	}
	for i := range xs {
		if highlight[i] {
			plot(i, '*')
		}
	}
	var b strings.Builder
	fmt.Fprintf(&b, "%s  (y: %.4g..%.4g, x: %.4g..%.4g)\n", title, minY, maxY, minX, maxX)
	for _, row := range grid {
		b.WriteByte('|')
		b.Write(row)
		b.WriteByte('\n')
	}
	b.WriteByte('+')
	b.WriteString(strings.Repeat("-", width))
	b.WriteByte('\n')
	return b.String()
}

func minMax(vals []float64) (lo, hi float64) {
	if len(vals) == 0 {
		return 0, 1
	}
	lo, hi = vals[0], vals[0]
	for _, v := range vals[1:] {
		if v < lo {
			lo = v
		}
		if v > hi {
			hi = v
		}
	}
	return lo, hi
}

func scaleTo(v, lo, hi float64, maxIdx int) int {
	if hi <= lo {
		return 0
	}
	i := int((v - lo) / (hi - lo) * float64(maxIdx))
	if i < 0 {
		i = 0
	}
	if i > maxIdx {
		i = maxIdx
	}
	return i
}

// RadarAxis is one spoke of a Figure 4 radar plot.
type RadarAxis struct {
	Name  string
	Value float64 // normalized to [0, 1]
}

// Radar holds one solution's radar plot data.
type Radar struct {
	Label string
	Axes  []RadarAxis
}

// Render lists the spokes with a bar rendering of the normalized value.
func (r Radar) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s\n", r.Label)
	for _, a := range r.Axes {
		bars := int(a.Value*20 + 0.5)
		if bars > 20 {
			bars = 20
		}
		if bars < 0 {
			bars = 0
		}
		fmt.Fprintf(&b, "  %-18s %5.2f %s\n", a.Name, a.Value, strings.Repeat("#", bars))
	}
	return b.String()
}

// Histogram renders an ASCII histogram of values over `bins` equal-width
// buckets, one line per bucket with a proportional bar — used for the
// accuracy distribution over the 1,717 outcomes.
func Histogram(title string, values []float64, bins, width int) string {
	if bins < 1 {
		bins = 10
	}
	if width < 10 {
		width = 40
	}
	var b strings.Builder
	fmt.Fprintf(&b, "%s  (n=%d)\n", title, len(values))
	if len(values) == 0 {
		return b.String()
	}
	lo, hi := minMax(values)
	if hi == lo {
		hi = lo + 1
	}
	counts := make([]int, bins)
	for _, v := range values {
		idx := int((v - lo) / (hi - lo) * float64(bins))
		if idx >= bins {
			idx = bins - 1
		}
		if idx < 0 {
			idx = 0
		}
		counts[idx]++
	}
	maxCount := 0
	for _, c := range counts {
		if c > maxCount {
			maxCount = c
		}
	}
	for i, c := range counts {
		bucketLo := lo + (hi-lo)*float64(i)/float64(bins)
		bucketHi := lo + (hi-lo)*float64(i+1)/float64(bins)
		bars := 0
		if maxCount > 0 {
			bars = c * width / maxCount
		}
		fmt.Fprintf(&b, "%9.2f-%-9.2f %6d %s\n", bucketLo, bucketHi, c, strings.Repeat("#", bars))
	}
	return b.String()
}

// Markdown renders the table as GitHub-flavored Markdown, for embedding in
// EXPERIMENTS.md-style documents.
func (t *Table) Markdown() string {
	var b strings.Builder
	if t.Title != "" {
		fmt.Fprintf(&b, "**%s**\n\n", t.Title)
	}
	writeRow := func(cells []string) {
		b.WriteByte('|')
		for _, c := range cells {
			b.WriteByte(' ')
			b.WriteString(strings.ReplaceAll(c, "|", "\\|"))
			b.WriteString(" |")
		}
		b.WriteByte('\n')
	}
	writeRow(t.Header)
	b.WriteByte('|')
	for range t.Header {
		b.WriteString("---|")
	}
	b.WriteByte('\n')
	for _, row := range t.Rows {
		writeRow(row)
	}
	return b.String()
}
