package sim

import (
	"fmt"
	"math"
	"sort"
	"time"

	"drainnas/internal/route"
	"drainnas/internal/tensor"
)

// Dist selects a client's interarrival distribution. Poisson (exponential
// interarrivals) is the memoryless default; Gamma and Weibull shape the
// coefficient of variation — sub-exponential (shape > 1) for paced clients,
// super-exponential (shape < 1) for bursty ones — the multi-client realism
// knob ServeGen-style workload generators expose.
type Dist int

// The supported interarrival distributions.
const (
	DistPoisson Dist = iota
	DistGamma
	DistWeibull
)

// String names the distribution as accepted by -dist.
func (d Dist) String() string {
	switch d {
	case DistGamma:
		return "gamma"
	case DistWeibull:
		return "weibull"
	default:
		return "poisson"
	}
}

// ParseDist maps the flag name to a distribution; empty means Poisson.
func ParseDist(s string) (Dist, error) {
	switch s {
	case "", "poisson":
		return DistPoisson, nil
	case "gamma":
		return DistGamma, nil
	case "weibull":
		return DistWeibull, nil
	default:
		return DistPoisson, fmt.Errorf("sim: unknown distribution %q (want poisson, gamma or weibull)", s)
	}
}

// Arrival is one simulated request: when it arrives and what it asks for.
// Model is the serving key (which may carry a precision suffix, "name@int8"
// — precision affinity is just a different key, exactly as in servd).
type Arrival struct {
	At      time.Duration
	Model   string
	Class   route.SLOClass
	C, H, W int
}

// ModelShare is one entry of a client's model mix.
type ModelShare struct {
	Key    string
	Weight float64
}

// Client is one traffic class: an arrival process, an SLO class, and a
// model/precision mix. Requests from different clients interleave on the
// shared timeline.
type Client struct {
	Name    string
	RateRPS float64
	Dist    Dist
	// Shape is the Gamma/Weibull shape parameter (ignored for Poisson);
	// values <= 0 mean 1.
	Shape  float64
	Class  route.SLOClass
	Models []ModelShare
	// C, H, W is the chip shape the client submits (recorded in traces;
	// service time is per-model, so the shape is metadata here).
	C, H, W int
}

// Workload is a multi-client traffic description over a bounded horizon.
type Workload struct {
	Clients  []Client
	Duration time.Duration
	Seed     uint64
}

// Arrivals expands the workload into its deterministic arrival stream:
// each client draws interarrivals and model picks from its own seeded RNG
// stream (derived from the workload seed and the client's index and name),
// and the merged stream is totally ordered by (time, client index, per-
// client sequence) so equal-time arrivals have a stable order.
func (w Workload) Arrivals() ([]Arrival, error) {
	type keyed struct {
		a       Arrival
		ci, seq int
	}
	var all []keyed
	for ci, c := range w.Clients {
		if c.RateRPS <= 0 {
			return nil, fmt.Errorf("sim: client %q rate %.3f rps, want > 0", c.Name, c.RateRPS)
		}
		if len(c.Models) == 0 {
			return nil, fmt.Errorf("sim: client %q has no model mix", c.Name)
		}
		total := 0.0
		for _, m := range c.Models {
			if m.Weight < 0 {
				return nil, fmt.Errorf("sim: client %q model %q has negative weight", c.Name, m.Key)
			}
			total += m.Weight
		}
		if total <= 0 {
			return nil, fmt.Errorf("sim: client %q model mix sums to zero", c.Name)
		}
		rng := tensor.NewRNG(w.Seed ^ clientHash(c.Name, ci))
		t := time.Duration(0)
		for seq := 0; ; seq++ {
			t += c.interarrival(rng)
			if t > w.Duration {
				break
			}
			pick := rng.Float64() * total
			key := c.Models[len(c.Models)-1].Key
			for _, m := range c.Models {
				if pick < m.Weight {
					key = m.Key
					break
				}
				pick -= m.Weight
			}
			all = append(all, keyed{
				a:  Arrival{At: t, Model: key, Class: c.Class, C: c.C, H: c.H, W: c.W},
				ci: ci, seq: seq,
			})
		}
	}
	sort.Slice(all, func(i, j int) bool {
		if all[i].a.At != all[j].a.At {
			return all[i].a.At < all[j].a.At
		}
		if all[i].ci != all[j].ci {
			return all[i].ci < all[j].ci
		}
		return all[i].seq < all[j].seq
	})
	out := make([]Arrival, len(all))
	for i, k := range all {
		out[i] = k.a
	}
	return out, nil
}

// clientHash mixes a client's name and index into a seed offset (FNV-1a
// over the name, salted by the index) so renaming or reordering clients
// changes their stream but nothing else does.
func clientHash(name string, index int) uint64 {
	h := uint64(0xcbf29ce484222325) ^ uint64(index)*0x9E3779B97F4A7C15
	for i := 0; i < len(name); i++ {
		h = (h ^ uint64(name[i])) * 0x100000001B3
	}
	return h
}

// interarrival draws the next gap for the client's process. All three
// distributions are parameterized to the client's mean rate, so changing
// Dist changes burstiness, not offered load.
func (c Client) interarrival(rng *tensor.RNG) time.Duration {
	mean := 1 / c.RateRPS // seconds
	shape := c.Shape
	if shape <= 0 {
		shape = 1
	}
	var x float64
	switch c.Dist {
	case DistGamma:
		// Gamma(k, θ) with kθ = mean.
		x = gammaSample(rng, shape) * (mean / shape)
	case DistWeibull:
		// Weibull(k, λ) with λΓ(1+1/k) = mean; inverse-CDF sampling.
		lambda := mean / math.Gamma(1+1/shape)
		x = lambda * math.Pow(expSample(rng), 1/shape)
	default:
		x = expSample(rng) * mean
	}
	if x <= 0 {
		x = 1e-9
	}
	return time.Duration(x * float64(time.Second))
}

// expSample draws a unit-mean exponential deviate, guarding the log against
// a zero uniform.
func expSample(rng *tensor.RNG) float64 {
	u := 1 - rng.Float64() // (0, 1]
	return -math.Log(u)
}

// gammaSample draws a unit-scale Gamma(k) deviate via Marsaglia–Tsang,
// with the k < 1 boost trick.
func gammaSample(rng *tensor.RNG, k float64) float64 {
	if k < 1 {
		u := rng.Float64()
		for u == 0 {
			u = rng.Float64()
		}
		return gammaSample(rng, k+1) * math.Pow(u, 1/k)
	}
	d := k - 1.0/3
	c := 1 / math.Sqrt(9*d)
	for {
		x := rng.NormFloat64()
		v := 1 + c*x
		if v <= 0 {
			continue
		}
		v = v * v * v
		u := rng.Float64()
		if u < 1-0.0331*x*x*x*x {
			return d * v
		}
		if u > 0 && math.Log(u) < 0.5*x*x+d*(1-v+math.Log(v)) {
			return d * v
		}
	}
}
