package sim

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"drainnas/internal/latmeter"
	"drainnas/internal/metrics"
	"drainnas/internal/route"
)

// The fixture scenario: the "true" hardware is the analytic model with both
// scales off by a known factor, and its measurements pass through the real
// /v1/stats histogram pipeline (so calibration sees genuine bucket
// interpolation error, not idealized numbers).
const (
	fixtureTrueWork     = 1.30
	fixtureTrueOverhead = 0.75
)

func fixtureModels() map[string]latmeter.ServiceModel {
	return map[string]latmeter.ServiceModel{
		"paper":      {PerItemMS: 4.0, PerBatchMS: 1.0},
		"paper@int8": {PerItemMS: 1.6, PerBatchMS: 1.0},
	}
}

func fixtureConfig() Config {
	return Config{
		Replicas: 2, Workers: 1, MaxBatch: 8, MaxDelay: 2 * time.Millisecond,
		Models: fixtureModels(), Horizon: 4 * time.Second,
	}
}

func fixtureWorkload() Workload {
	return Workload{
		Seed:     1234,
		Duration: 4 * time.Second,
		Clients: []Client{
			{
				Name: "online", RateRPS: 150, Dist: DistPoisson,
				Class: route.ClassInteractive, C: 5, H: 128, W: 128,
				Models: []ModelShare{{Key: "paper@int8", Weight: 0.6}, {Key: "paper", Weight: 0.4}},
			},
			{
				Name: "offline", RateRPS: 50, Dist: DistGamma, Shape: 0.7,
				Class: route.ClassBatch, C: 5, H: 128, W: 128,
				Models: []ModelShare{{Key: "paper", Weight: 1}},
			},
		},
	}
}

const (
	fixtureTracePath = "testdata/fixture_trace.jsonl"
	fixtureStatsPath = "testdata/fixture_stats.json"
)

// writeFixtures regenerates testdata: the trace of the fixture workload and
// a /v1/stats-shaped document whose histograms hold the "true"-scaled
// simulation's latencies. Run with SIM_WRITE_FIXTURES=1 to refresh.
func writeFixtures(t *testing.T) {
	t.Helper()
	arr, err := fixtureWorkload().Arrivals()
	if err != nil {
		t.Fatalf("fixture arrivals: %v", err)
	}
	if err := os.MkdirAll("testdata", 0o755); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteTrace(&buf, EventsFromArrivals(arr)); err != nil {
		t.Fatalf("fixture trace: %v", err)
	}
	if err := os.WriteFile(fixtureTracePath, buf.Bytes(), 0o644); err != nil {
		t.Fatal(err)
	}

	stats := &metrics.ServingStats{}
	cfg := fixtureConfig()
	cfg.WorkScale, cfg.OverheadScale = fixtureTrueWork, fixtureTrueOverhead
	cfg.OnComplete = func(model string, lat time.Duration) {
		stats.Enqueued(model)
		stats.Completed(model, 0, lat)
	}
	if _, err := Run(cfg, arr); err != nil {
		t.Fatalf("fixture run: %v", err)
	}
	doc, err := json.MarshalIndent(map[string]any{"serving": stats.Snapshot()}, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(fixtureStatsPath, append(doc, '\n'), 0o644); err != nil {
		t.Fatal(err)
	}
}

// loadFixture reads the recorded trace and measured stats from testdata.
func loadFixture(t *testing.T) ([]Arrival, map[string]MeasuredQuantiles) {
	t.Helper()
	tf, err := os.Open(fixtureTracePath)
	if err != nil {
		t.Fatalf("fixture trace missing (regenerate with SIM_WRITE_FIXTURES=1): %v", err)
	}
	defer tf.Close()
	events, err := ReadTrace(tf)
	if err != nil {
		t.Fatalf("fixture trace: %v", err)
	}
	arr, err := TraceArrivals(events)
	if err != nil {
		t.Fatalf("fixture arrivals: %v", err)
	}
	sf, err := os.Open(fixtureStatsPath)
	if err != nil {
		t.Fatalf("fixture stats missing (regenerate with SIM_WRITE_FIXTURES=1): %v", err)
	}
	defer sf.Close()
	measured, err := ParseStatsQuantiles(sf)
	if err != nil {
		t.Fatalf("fixture stats: %v", err)
	}
	return arr, measured
}

// TestCalibrationFixture is the CI calibration gate: fitting the simulator's
// two scales against the recorded fixture must land within 15% MAPE of the
// measured p50/p95/p99 set, with a strong linear correlation — even though
// the measurements passed through the bucketed histogram pipeline.
func TestCalibrationFixture(t *testing.T) {
	if os.Getenv("SIM_WRITE_FIXTURES") == "1" {
		writeFixtures(t)
	}
	arr, measured := loadFixture(t)
	if _, ok := measured[OverallKey]; !ok {
		t.Fatal("fixture stats lost the overall histogram")
	}
	if len(measured) < 3 {
		t.Fatalf("fixture stats track %d series, want overall + 2 models", len(measured))
	}

	cal, err := Calibrate(fixtureConfig(), arr, measured)
	if err != nil {
		t.Fatalf("calibrate: %v", err)
	}
	t.Logf("calibration: work=%.3f overhead=%.3f MAPE=%.2f%% r=%.4f over %d points",
		cal.WorkScale, cal.OverheadScale, cal.MAPEPercent, cal.PearsonR, cal.Points)

	if cal.MAPEPercent > 15 {
		t.Fatalf("calibrated MAPE %.2f%%, gate is 15%%", cal.MAPEPercent)
	}
	if cal.PearsonR < 0.9 {
		t.Fatalf("Pearson r %.4f, want >= 0.9", cal.PearsonR)
	}
	if cal.Points < 9 {
		t.Fatalf("fit used %d points, want >= 9 (3 quantiles x 3 series)", cal.Points)
	}
	// The fitted work scale must move toward the truth (1.30) from the 1.0
	// start — the fit is recovering signal, not reporting noise.
	if cal.WorkScale < 1.1 || cal.WorkScale > 1.6 {
		t.Fatalf("fitted work scale %.3f, want near true %.2f", cal.WorkScale, fixtureTrueWork)
	}
}

// TestCalibrationImprovesFit checks the descent actually descends: the
// fitted scales score no worse than the uncalibrated starting point.
func TestCalibrationImprovesFit(t *testing.T) {
	if _, err := os.Stat(fixtureTracePath); err != nil {
		t.Skip("fixture not present")
	}
	arr, measured := loadFixture(t)
	cfg := fixtureConfig()

	base, err := Run(cfg, arr)
	if err != nil {
		t.Fatalf("baseline run: %v", err)
	}
	basePts := matchPoints(base, measured)
	baseMAPE := mape(basePts)

	cal, err := Calibrate(cfg, arr, measured)
	if err != nil {
		t.Fatalf("calibrate: %v", err)
	}
	if cal.MAPEPercent > baseMAPE+1e-9 {
		t.Fatalf("calibration worsened MAPE: %.2f%% -> %.2f%%", baseMAPE, cal.MAPEPercent)
	}
	if baseMAPE > 15 && cal.MAPEPercent > baseMAPE*0.8 {
		t.Fatalf("calibration barely moved: %.2f%% -> %.2f%%", baseMAPE, cal.MAPEPercent)
	}
}

// TestParseStatsQuantiles pins the /v1/stats decoding: overall + per-model
// series extracted, the overflow bucket and empty histograms skipped,
// garbage rejected.
func TestParseStatsQuantiles(t *testing.T) {
	doc := `{"serving":{
		"latency":{"count":10,"p50_ms":5,"p95_ms":9,"p99_ms":9.8},
		"per_model":{
			"paper":{"latency":{"count":6,"p50_ms":6,"p95_ms":10,"p99_ms":11}},
			"_other":{"latency":{"count":4,"p50_ms":1,"p95_ms":2,"p99_ms":3}},
			"idle":{"latency":{"count":0}}
		}}}`
	got, err := ParseStatsQuantiles(strings.NewReader(doc))
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	if len(got) != 2 {
		t.Fatalf("parsed %d series, want 2 (overall + paper): %v", len(got), got)
	}
	if got[OverallKey].P95MS != 9 || got["paper"].P99MS != 11 {
		t.Fatalf("quantiles mangled: %+v", got)
	}
	if _, ok := got[metrics.OverflowModelKey]; ok {
		t.Fatal("overflow bucket leaked into calibration targets")
	}

	if _, err := ParseStatsQuantiles(strings.NewReader("{nope")); err == nil {
		t.Fatal("garbage accepted")
	}
	if _, err := ParseStatsQuantiles(strings.NewReader(`{"serving":{}}`)); err == nil {
		t.Fatal("empty stats accepted (no samples to calibrate against)")
	}
}

// TestFixtureFilesWellFormed guards the checked-in testdata itself: the
// trace parses and replays, and the stats document is a genuine servd
// /v1/stats shape (fields nested exactly as the server writes them).
func TestFixtureFilesWellFormed(t *testing.T) {
	arr, measured := loadFixture(t)
	if len(arr) < 500 {
		t.Fatalf("fixture trace holds %d arrivals, want a substantial stream", len(arr))
	}
	for k, m := range measured {
		if m.P50MS <= 0 || m.P95MS < m.P50MS || m.P99MS < m.P95MS {
			t.Fatalf("fixture series %s has non-monotone quantiles: %+v", k, m)
		}
	}
	raw, err := os.ReadFile(filepath.Clean(fixtureStatsPath))
	if err != nil {
		t.Fatal(err)
	}
	var shape struct {
		Serving *json.RawMessage `json:"serving"`
	}
	if err := json.Unmarshal(raw, &shape); err != nil || shape.Serving == nil {
		t.Fatalf("fixture stats not in /v1/stats shape: %v", err)
	}
}
