package sim

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"drainnas/internal/api"
	"drainnas/internal/latmeter"
)

// TestTraceRoundTripIdentity is the replay acceptance property: generate a
// workload, save it as a trace, read the trace back, and the simulator must
// produce a byte-identical report from the replayed arrivals — the trace
// file loses nothing the pipeline depends on.
func TestTraceRoundTripIdentity(t *testing.T) {
	arr, err := testWorkload(99).Arrivals()
	if err != nil {
		t.Fatalf("arrivals: %v", err)
	}
	cfg := Config{
		Replicas: 2, Workers: 2, MaxInFlight: 32, AdmitRate: 400, AdmitBurst: 40,
		Models: testModels(), Horizon: 2 * time.Second,
	}
	direct, err := Run(cfg, arr)
	if err != nil {
		t.Fatalf("direct run: %v", err)
	}

	var buf bytes.Buffer
	if err := WriteTrace(&buf, EventsFromArrivals(arr)); err != nil {
		t.Fatalf("write trace: %v", err)
	}
	events, err := ReadTrace(&buf)
	if err != nil {
		t.Fatalf("read trace: %v", err)
	}
	if len(events) != len(arr) {
		t.Fatalf("trace holds %d events, want %d", len(events), len(arr))
	}
	replayed, err := TraceArrivals(events)
	if err != nil {
		t.Fatalf("trace arrivals: %v", err)
	}
	for i := range arr {
		if replayed[i] != arr[i] {
			t.Fatalf("arrival %d changed across the file round-trip:\n  orig   %+v\n  replay %+v",
				i, arr[i], replayed[i])
		}
	}
	viaTrace, err := Run(cfg, replayed)
	if err != nil {
		t.Fatalf("replay run: %v", err)
	}
	if direct.Render() != viaTrace.Render() {
		t.Fatalf("replayed report differs from direct report:\n--- direct ---\n%s--- replay ---\n%s",
			direct.Render(), viaTrace.Render())
	}
	dj, _ := json.Marshal(direct)
	rj, _ := json.Marshal(viaTrace)
	if !bytes.Equal(dj, rj) {
		t.Fatal("replayed JSON differs from direct JSON")
	}
}

// TestTraceWriterRecordsOffsets checks the live recorder: offsets start at
// zero, events validate, and Close flushes.
func TestTraceWriterRecordsOffsets(t *testing.T) {
	var buf bytes.Buffer
	tw := NewTraceWriter(&buf)
	tw.Record("paper@int8", "interactive", []int{5, 128, 128})
	tw.Record("paper", "", []int{5, 128, 128})
	tw.Record("bad", "", []int{5, 128}) // wrong rank: dropped
	if err := tw.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}
	if tw.Count() != 2 {
		t.Fatalf("recorded %d events, want 2", tw.Count())
	}
	events, err := ReadTrace(&buf)
	if err != nil {
		t.Fatalf("read back: %v", err)
	}
	if len(events) != 2 {
		t.Fatalf("read %d events, want 2", len(events))
	}
	if events[0].TMS != 0 {
		t.Fatalf("first event at t_ms %v, want 0 (trace-relative clock)", events[0].TMS)
	}
	if events[0].Model != "paper@int8" || events[0].SLO != "interactive" {
		t.Fatalf("first event %+v lost fields", events[0])
	}
	if events[1].TMS < 0 {
		t.Fatalf("second event at t_ms %v, want >= 0", events[1].TMS)
	}
}

// TestReadTraceRejectsCorruptLines checks the reader's validation paths
// report line numbers.
func TestReadTraceRejectsCorruptLines(t *testing.T) {
	cases := []struct{ name, in string }{
		{"bad json", `{"t_ms":0,"model":"m","c":1,"h":1,"w":1}` + "\n{nope\n"},
		{"negative time", `{"t_ms":-5,"model":"m","c":1,"h":1,"w":1}` + "\n"},
		{"empty model", `{"t_ms":0,"model":"","c":1,"h":1,"w":1}` + "\n"},
		{"zero dim", `{"t_ms":0,"model":"m","c":0,"h":1,"w":1}` + "\n"},
		{"huge dim", `{"t_ms":0,"model":"m","c":1,"h":1,"w":2097152}` + "\n"},
		{"bad slo", `{"t_ms":0,"model":"m","slo":"urgent","c":1,"h":1,"w":1}` + "\n"},
		{"nan time", `{"t_ms":"x","model":"m","c":1,"h":1,"w":1}` + "\n"},
	}
	for _, tc := range cases {
		if _, err := ReadTrace(strings.NewReader(tc.in)); err == nil {
			t.Errorf("%s: accepted, want error", tc.name)
		} else if !strings.Contains(err.Error(), "line") {
			t.Errorf("%s: error %q does not name the line", tc.name, err)
		}
	}
	// Blank lines are fine.
	events, err := ReadTrace(strings.NewReader("\n" + `{"t_ms":1,"model":"m","c":1,"h":1,"w":1}` + "\n\n"))
	if err != nil || len(events) != 1 {
		t.Fatalf("blank-line trace: %v, %d events", err, len(events))
	}
}

// TestReplayHTTPPacesAndPosts replays a 3-event trace against a stub server
// and checks the bodies decode, the model keys survive, and two replays send
// identical payloads (deterministic synthesis).
func TestReplayHTTPPacesAndPosts(t *testing.T) {
	events := []TraceEvent{
		{TMS: 0, Model: "paper", SLO: "interactive", C: 2, H: 4, W: 4},
		{TMS: 1, Model: "paper@int8", C: 2, H: 4, W: 4},
		{TMS: 2, Model: "paper", SLO: "batch", C: 2, H: 4, W: 4},
	}
	var mu atomic.Int64
	var got [][]byte
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		var req api.PredictRequest
		if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
			t.Errorf("replay body: %v", err)
		}
		b, _ := json.Marshal(req)
		got = append(got, b)
		if mu.Add(1) == 2 {
			w.WriteHeader(http.StatusTooManyRequests) // overload is data, not fatal
			return
		}
		w.Write([]byte("{}"))
	}))
	defer srv.Close()

	ok, err := ReplayHTTP(context.Background(), srv.Client(), srv.URL, events, 100, 7)
	if err != nil {
		t.Fatalf("replay: %v", err)
	}
	if ok != 2 {
		t.Fatalf("%d successes, want 2 (one stubbed 429)", ok)
	}
	if len(got) != 3 {
		t.Fatalf("server saw %d requests, want 3", len(got))
	}
	first := append([][]byte(nil), got...)

	got = nil
	mu.Store(0)
	if _, err := ReplayHTTP(context.Background(), srv.Client(), srv.URL, events, 100, 7); err != nil {
		t.Fatalf("second replay: %v", err)
	}
	for i := range first {
		if !bytes.Equal(first[i], got[i]) {
			t.Fatalf("replay %d not deterministic across runs", i)
		}
	}

	// Cancellation stops the pacer promptly.
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	slow := []TraceEvent{{TMS: 60000, Model: "paper", C: 1, H: 1, W: 1}}
	if _, err := ReplayHTTP(ctx, srv.Client(), srv.URL, slow, 1, 7); err != context.Canceled {
		t.Fatalf("canceled replay returned %v, want context.Canceled", err)
	}
}

// FuzzTraceDecode hammers the JSONL reader with arbitrary bytes: it must
// never panic, and anything it accepts must validate and convert.
func FuzzTraceDecode(f *testing.F) {
	f.Add([]byte(`{"t_ms":0,"model":"paper","c":5,"h":128,"w":128}` + "\n"))
	f.Add([]byte(`{"t_ms":1.5,"model":"paper@int8","slo":"batch","c":1,"h":1,"w":1}` + "\n"))
	f.Add([]byte(`{"t_ms":-1,"model":"m","c":1,"h":1,"w":1}`))
	f.Add([]byte(`{"t_ms":1e308,"model":"m","c":1,"h":1,"w":1}`))
	f.Add([]byte("\n\n{}\n"))
	f.Add([]byte(`{"t_ms":0,"model":"` + strings.Repeat("a", 300) + `","c":1,"h":1,"w":1}`))
	f.Fuzz(func(t *testing.T, data []byte) {
		events, err := ReadTrace(bytes.NewReader(data))
		if err != nil {
			return
		}
		for i, ev := range events {
			if verr := ev.Validate(); verr != nil {
				t.Fatalf("ReadTrace accepted invalid event %d (%+v): %v", i, ev, verr)
			}
		}
		arrivals, err := TraceArrivals(events)
		if err != nil {
			t.Fatalf("accepted trace failed conversion: %v", err)
		}
		for i := 1; i < len(arrivals); i++ {
			if arrivals[i].At < arrivals[i-1].At {
				t.Fatalf("TraceArrivals out of order at %d", i)
			}
		}
		if len(arrivals) > 0 {
			models := map[string]latmeter.ServiceModel{}
			for _, a := range arrivals {
				models[a.Model] = latmeter.ServiceModel{PerItemMS: 1}
			}
			if _, err := Run(Config{Models: models}, arrivals); err != nil {
				t.Fatalf("accepted trace failed simulation: %v", err)
			}
		}
	})
}
