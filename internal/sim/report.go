package sim

import (
	"fmt"
	"sort"
	"strings"
)

// QuantileSet summarizes a latency sample exactly (sorted-sample
// interpolation, not histogram buckets). All values are milliseconds.
type QuantileSet struct {
	Count  uint64  `json:"count"`
	MeanMS float64 `json:"mean_ms"`
	MinMS  float64 `json:"min_ms"`
	MaxMS  float64 `json:"max_ms"`
	P50MS  float64 `json:"p50_ms"`
	P95MS  float64 `json:"p95_ms"`
	P99MS  float64 `json:"p99_ms"`
}

// summarize computes the exact quantile set of a latency sample. The input
// slice is sorted in place.
func summarize(latMS []float64) QuantileSet {
	q := QuantileSet{Count: uint64(len(latMS))}
	if len(latMS) == 0 {
		return q
	}
	sort.Float64s(latMS)
	sum := 0.0
	for _, v := range latMS {
		sum += v
	}
	q.MeanMS = sum / float64(len(latMS))
	q.MinMS = latMS[0]
	q.MaxMS = latMS[len(latMS)-1]
	q.P50MS = sampleQuantile(latMS, 0.50)
	q.P95MS = sampleQuantile(latMS, 0.95)
	q.P99MS = sampleQuantile(latMS, 0.99)
	return q
}

// sampleQuantile interpolates linearly between the order statistics at rank
// p·(n−1) — the standard "type 7" estimator.
func sampleQuantile(sorted []float64, p float64) float64 {
	n := len(sorted)
	if n == 1 {
		return sorted[0]
	}
	rank := p * float64(n-1)
	lo := int(rank)
	if lo >= n-1 {
		return sorted[n-1]
	}
	frac := rank - float64(lo)
	return sorted[lo] + frac*(sorted[lo+1]-sorted[lo])
}

// ClassReport is the per-SLO-class slice of the report.
type ClassReport struct {
	Class     string      `json:"class"`
	Arrived   uint64      `json:"arrived"`
	Throttled uint64      `json:"throttled"`
	Rejected  uint64      `json:"rejected"`
	Completed uint64      `json:"completed"`
	Latency   QuantileSet `json:"latency"`
}

// ModelReport is the per-serving-key slice of the report.
type ModelReport struct {
	Model     string      `json:"model"`
	Completed uint64      `json:"completed"`
	Latency   QuantileSet `json:"latency"`
}

// ReplicaReport is one replica's utilization accounting.
type ReplicaReport struct {
	ID          string  `json:"id"`
	Requests    uint64  `json:"requests"`
	Batches     uint64  `json:"batches"`
	MeanBatch   float64 `json:"mean_batch"`
	Utilization float64 `json:"utilization"`
}

// Report is the full simulation outcome. Sections are sorted slices, never
// maps, so JSON and Render output are byte-stable for a given input.
type Report struct {
	DurationMS    float64         `json:"duration_ms"`
	Replicas      int             `json:"replicas"`
	Arrived       uint64          `json:"arrived"`
	Throttled     uint64          `json:"throttled"`
	Rejected      uint64          `json:"rejected"`
	Completed     uint64          `json:"completed"`
	ThroughputRPS float64         `json:"throughput_rps"`
	MeanBatch     float64         `json:"mean_batch"`
	Latency       QuantileSet     `json:"latency"`
	Classes       []ClassReport   `json:"classes,omitempty"`
	Models        []ModelReport   `json:"models,omitempty"`
	ReplicaStats  []ReplicaReport `json:"replica_stats,omitempty"`
}

// GoodputFraction is completed over arrived (1 when nothing arrived).
func (r Report) GoodputFraction() float64 {
	if r.Arrived == 0 {
		return 1
	}
	return float64(r.Completed) / float64(r.Arrived)
}

// Render formats the report as the fixed-layout text capsim prints. Every
// number uses an explicit width/precision verb so identical reports render
// to identical bytes.
func (r Report) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "simulated %.0f ms on %d replica(s): %d arrived, %d completed (%.1f%% goodput), %d throttled, %d rejected\n",
		r.DurationMS, r.Replicas, r.Arrived, r.Completed, 100*r.GoodputFraction(), r.Throttled, r.Rejected)
	fmt.Fprintf(&b, "throughput %.1f rps, mean batch %.2f\n", r.ThroughputRPS, r.MeanBatch)
	fmt.Fprintf(&b, "latency    %s\n", renderQ(r.Latency))
	for _, c := range r.Classes {
		fmt.Fprintf(&b, "class %-12s %s (arrived %d, throttled %d, rejected %d)\n",
			c.Class, renderQ(c.Latency), c.Arrived, c.Throttled, c.Rejected)
	}
	for _, m := range r.Models {
		fmt.Fprintf(&b, "model %-24s %s\n", m.Model, renderQ(m.Latency))
	}
	for _, rr := range r.ReplicaStats {
		fmt.Fprintf(&b, "%-12s %6d req %6d batches (mean %.2f) utilization %.1f%%\n",
			rr.ID, rr.Requests, rr.Batches, rr.MeanBatch, 100*rr.Utilization)
	}
	return b.String()
}

func renderQ(q QuantileSet) string {
	if q.Count == 0 {
		return "n=0"
	}
	return fmt.Sprintf("n=%-6d mean %7.2fms  p50 %7.2fms  p95 %7.2fms  p99 %7.2fms  max %7.2fms",
		q.Count, q.MeanMS, q.P50MS, q.P95MS, q.P99MS, q.MaxMS)
}
