package sim

import (
	"encoding/json"
	"math"
	"testing"
	"time"

	"drainnas/internal/latmeter"
	"drainnas/internal/route"
)

// testModels is a small fleet of service models with distinct costs: the
// fp32 key is 4x the work of its int8 sibling, and "slow" dominates both.
func testModels() map[string]latmeter.ServiceModel {
	return map[string]latmeter.ServiceModel{
		"paper":      {PerItemMS: 4.0, PerBatchMS: 1.0},
		"paper@int8": {PerItemMS: 1.6, PerBatchMS: 1.0},
		"slow":       {PerItemMS: 20.0, PerBatchMS: 2.0},
	}
}

func testWorkload(seed uint64) Workload {
	return Workload{
		Seed:     seed,
		Duration: 2 * time.Second,
		Clients: []Client{
			{
				Name: "interactive", RateRPS: 120, Dist: DistPoisson,
				Class: route.ClassInteractive, C: 5, H: 128, W: 128,
				Models: []ModelShare{{Key: "paper@int8", Weight: 1}},
			},
			{
				Name: "batch", RateRPS: 60, Dist: DistGamma, Shape: 0.5,
				Class: route.ClassBatch, C: 5, H: 128, W: 128,
				Models: []ModelShare{{Key: "paper", Weight: 0.7}, {Key: "slow", Weight: 0.3}},
			},
		},
	}
}

// TestSimDeterminism is the core acceptance property: the same seed yields a
// byte-identical report (Render text and JSON), and a different seed does
// not.
func TestSimDeterminism(t *testing.T) {
	cfg := Config{
		Replicas: 2, Workers: 2, MaxInFlight: 64, Sched: route.Priority,
		AdmitRate: 500, AdmitBurst: 50, Models: testModels(),
		Policy: PolicyLeastLoaded, Horizon: 2 * time.Second, NetworkMS: 0.2,
	}
	run := func(seed uint64) (string, string) {
		arr, err := testWorkload(seed).Arrivals()
		if err != nil {
			t.Fatalf("arrivals: %v", err)
		}
		rep, err := Run(cfg, arr)
		if err != nil {
			t.Fatalf("run: %v", err)
		}
		js, err := json.Marshal(rep)
		if err != nil {
			t.Fatalf("marshal: %v", err)
		}
		return rep.Render(), string(js)
	}

	txt1, js1 := run(42)
	txt2, js2 := run(42)
	if txt1 != txt2 {
		t.Fatalf("same seed rendered differently:\n--- a ---\n%s--- b ---\n%s", txt1, txt2)
	}
	if js1 != js2 {
		t.Fatal("same seed produced different JSON")
	}
	txt3, _ := run(43)
	if txt1 == txt3 {
		t.Fatal("different seeds produced identical reports (suspicious)")
	}
}

// TestSimMoreReplicasHelp checks the capacity-planning signal: under an
// overloaded single replica, adding replicas must not make p99 worse and
// must strictly improve it somewhere along the sweep.
func TestSimMoreReplicasHelp(t *testing.T) {
	arr, err := testWorkload(7).Arrivals()
	if err != nil {
		t.Fatalf("arrivals: %v", err)
	}
	var prev float64 = math.Inf(1)
	improved := false
	for _, n := range []int{1, 2, 4} {
		rep, err := Run(Config{Replicas: n, Workers: 1, Models: testModels(), Horizon: 2 * time.Second}, arr)
		if err != nil {
			t.Fatalf("run replicas=%d: %v", n, err)
		}
		if rep.Completed != rep.Arrived {
			t.Fatalf("replicas=%d: %d of %d completed (no admission control configured)", n, rep.Completed, rep.Arrived)
		}
		if rep.Latency.P99MS > prev*1.001 {
			t.Fatalf("replicas=%d p99 %.2fms worse than previous %.2fms", n, rep.Latency.P99MS, prev)
		}
		if rep.Latency.P99MS < prev*0.9 {
			improved = true
		}
		prev = rep.Latency.P99MS
	}
	if !improved {
		t.Fatal("p99 never improved across the replica sweep; the fleet model is inert")
	}
}

// TestSimBatchingAmortizes checks the MaxDelay/MaxBatch semantics carry the
// amortization: under heavy load batches form (> 1 mean), and the int8 key
// runs faster than fp32.
func TestSimBatchingAmortizes(t *testing.T) {
	arr, err := testWorkload(11).Arrivals()
	if err != nil {
		t.Fatalf("arrivals: %v", err)
	}
	rep, err := Run(Config{Replicas: 1, Workers: 1, MaxBatch: 8, MaxDelay: 2 * time.Millisecond,
		Models: testModels(), Horizon: 2 * time.Second}, arr)
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	if rep.MeanBatch <= 1.0 {
		t.Fatalf("mean batch %.2f under saturation, want > 1 (batching inert)", rep.MeanBatch)
	}
	var fp32, int8 QuantileSet
	for _, m := range rep.Models {
		switch m.Model {
		case "paper":
			fp32 = m.Latency
		case "paper@int8":
			int8 = m.Latency
		}
	}
	if fp32.Count == 0 || int8.Count == 0 {
		t.Fatalf("missing per-model sections: %+v", rep.Models)
	}
	if int8.P50MS >= fp32.P50MS {
		t.Fatalf("int8 p50 %.2fms not faster than fp32 %.2fms", int8.P50MS, fp32.P50MS)
	}
}

// TestSimSingleRequestLatency pins the arithmetic end to end: one request on
// an idle replica waits out MaxDelay, then pays the batch-1 service time
// plus network overhead.
func TestSimSingleRequestLatency(t *testing.T) {
	arr := []Arrival{{At: 0, Model: "paper", Class: route.ClassStandard, C: 5, H: 128, W: 128}}
	rep, err := Run(Config{MaxDelay: 2 * time.Millisecond, Models: testModels(), NetworkMS: 0.5}, arr)
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	// MaxDelay 2ms + (1.0 + 1*4.0)ms service + 0.5ms network = 7.5ms.
	want := 7.5
	if math.Abs(rep.Latency.P50MS-want) > 1e-6 {
		t.Fatalf("single-request latency %.4fms, want %.4fms", rep.Latency.P50MS, want)
	}
	// A full batch cuts immediately: 8 simultaneous arrivals skip MaxDelay.
	var burst []Arrival
	for i := 0; i < 8; i++ {
		burst = append(burst, Arrival{At: 0, Model: "paper", Class: route.ClassStandard})
	}
	rep, err = Run(Config{MaxBatch: 8, MaxDelay: time.Second, Models: testModels()}, burst)
	if err != nil {
		t.Fatalf("run burst: %v", err)
	}
	want = 1.0 + 8*4.0 // no MaxDelay wait, no network
	if math.Abs(rep.Latency.P50MS-want) > 1e-6 {
		t.Fatalf("full-batch latency %.4fms, want %.4fms", rep.Latency.P50MS, want)
	}
	if rep.MeanBatch != 8 {
		t.Fatalf("mean batch %.2f, want 8", rep.MeanBatch)
	}
}

// TestSimAdmissionControl checks both admission stages: the token bucket
// throttles past its rate, and QueueCap rejects when a replica saturates.
func TestSimAdmissionControl(t *testing.T) {
	var burst []Arrival
	for i := 0; i < 100; i++ {
		burst = append(burst, Arrival{At: time.Duration(i) * time.Microsecond, Model: "paper"})
	}
	rep, err := Run(Config{AdmitRate: 10, AdmitBurst: 20, Models: testModels(), Horizon: time.Second}, burst)
	if err != nil {
		t.Fatalf("run throttle: %v", err)
	}
	if rep.Throttled < 70 || rep.Throttled > 90 {
		t.Fatalf("throttled %d of 100 with burst 20, want ~80", rep.Throttled)
	}

	rep, err = Run(Config{QueueCap: 16, MaxBatch: 4, Models: testModels(), Horizon: time.Second}, burst)
	if err != nil {
		t.Fatalf("run queuecap: %v", err)
	}
	if rep.Rejected == 0 {
		t.Fatal("QueueCap 16 under a 100-burst never rejected")
	}
	if rep.Completed+rep.Rejected != rep.Arrived {
		t.Fatalf("accounting leak: %d completed + %d rejected != %d arrived",
			rep.Completed, rep.Rejected, rep.Arrived)
	}
}

// TestSimSchedOrderAtGate checks the MaxInFlight gate honors the scheduling
// mode: with one slot and priority scheduling, an interactive arrival parked
// behind earlier batch arrivals completes first.
func TestSimSchedOrderAtGate(t *testing.T) {
	arrivals := []Arrival{
		{At: 0, Model: "slow", Class: route.ClassBatch},
		{At: time.Millisecond, Model: "paper", Class: route.ClassBatch},
		{At: 2 * time.Millisecond, Model: "paper", Class: route.ClassBatch},
		{At: 3 * time.Millisecond, Model: "paper", Class: route.ClassInteractive},
	}
	rep, err := Run(Config{MaxInFlight: 1, Sched: route.Priority, MaxDelay: time.Millisecond,
		Models: testModels()}, arrivals)
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	var interactive, batch QuantileSet
	for _, c := range rep.Classes {
		switch c.Class {
		case "interactive":
			interactive = c.Latency
		case "batch":
			batch = c.Latency
		}
	}
	// The interactive request must overtake the two parked batch requests:
	// its queueing delay is one slow batch, theirs is slow + interactive.
	if interactive.MaxMS >= batch.MaxMS {
		t.Fatalf("interactive max %.2fms did not beat batch max %.2fms under priority gate",
			interactive.MaxMS, batch.MaxMS)
	}
}

// TestSimUnknownModelErrors checks the upfront validation names the key.
func TestSimUnknownModelErrors(t *testing.T) {
	_, err := Run(Config{Models: testModels()}, []Arrival{{Model: "ghost"}})
	if err == nil {
		t.Fatal("unknown model key accepted")
	}
}

// TestWorkloadDistributions checks each interarrival family hits its target
// mean rate and ranks burstiness as expected (Gamma shape 0.5 burstier than
// Poisson, Weibull shape 2 smoother).
func TestWorkloadDistributions(t *testing.T) {
	const rate, dur = 200.0, 30 * time.Second
	cv := func(d Dist, shape float64) (float64, int) {
		w := Workload{Seed: 5, Duration: dur, Clients: []Client{{
			Name: "c", RateRPS: rate, Dist: d, Shape: shape,
			Models: []ModelShare{{Key: "m", Weight: 1}},
		}}}
		arr, err := w.Arrivals()
		if err != nil {
			t.Fatalf("%v arrivals: %v", d, err)
		}
		var gaps []float64
		prev := time.Duration(0)
		for _, a := range arr {
			gaps = append(gaps, (a.At - prev).Seconds())
			prev = a.At
		}
		mean, ss := 0.0, 0.0
		for _, g := range gaps {
			mean += g
		}
		mean /= float64(len(gaps))
		for _, g := range gaps {
			ss += (g - mean) * (g - mean)
		}
		return math.Sqrt(ss/float64(len(gaps))) / mean, len(arr)
	}

	cvP, nP := cv(DistPoisson, 0)
	cvG, _ := cv(DistGamma, 0.5)
	cvW, _ := cv(DistWeibull, 2)

	wantN := rate * dur.Seconds()
	if math.Abs(float64(nP)-wantN) > 0.1*wantN {
		t.Fatalf("poisson produced %d arrivals, want ~%.0f", nP, wantN)
	}
	if cvP < 0.9 || cvP > 1.1 {
		t.Fatalf("poisson interarrival CV %.2f, want ~1", cvP)
	}
	if cvG < 1.2 {
		t.Fatalf("gamma(0.5) CV %.2f, want > 1.2 (burstier than poisson)", cvG)
	}
	if cvW > 0.8 {
		t.Fatalf("weibull(2) CV %.2f, want < 0.8 (smoother than poisson)", cvW)
	}
}

// TestWorkloadValidation checks the generator rejects malformed clients.
func TestWorkloadValidation(t *testing.T) {
	bad := []Workload{
		{Duration: time.Second, Clients: []Client{{Name: "r", RateRPS: 0, Models: []ModelShare{{Key: "m", Weight: 1}}}}},
		{Duration: time.Second, Clients: []Client{{Name: "m", RateRPS: 1}}},
		{Duration: time.Second, Clients: []Client{{Name: "w", RateRPS: 1, Models: []ModelShare{{Key: "m", Weight: -1}}}}},
		{Duration: time.Second, Clients: []Client{{Name: "z", RateRPS: 1, Models: []ModelShare{{Key: "m", Weight: 0}}}}},
	}
	for i, w := range bad {
		if _, err := w.Arrivals(); err == nil {
			t.Errorf("workload %d accepted, want error", i)
		}
	}
}

// TestLoopOrdering pins the event loop's total order: time first, schedule
// order within a tick, past events clamped to now.
func TestLoopOrdering(t *testing.T) {
	l := NewLoop()
	var got []int
	l.At(2*time.Millisecond, func() { got = append(got, 2) })
	l.At(time.Millisecond, func() {
		got = append(got, 1)
		l.At(0, func() { got = append(got, 10) }) // past: clamps to now, runs before t=2ms
		l.After(0, func() { got = append(got, 11) })
	})
	l.At(2*time.Millisecond, func() { got = append(got, 3) })
	l.Run(0)
	want := []int{1, 10, 11, 2, 3}
	if len(got) != len(want) {
		t.Fatalf("ran %d events, want %d (%v)", len(got), len(want), got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("order %v, want %v", got, want)
		}
	}
	if l.Now() != 2*time.Millisecond {
		t.Fatalf("clock at %v, want 2ms", l.Now())
	}
	l.Run(5 * time.Millisecond)
	if l.Now() != 5*time.Millisecond {
		t.Fatalf("clock at %v after horizon run, want 5ms", l.Now())
	}
}
