package sim

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"sort"

	"drainnas/internal/metrics"
)

// MeasuredQuantiles is one measured latency distribution pulled from a
// servd /v1/stats payload: the overall serving histogram or one per-model
// slice.
type MeasuredQuantiles struct {
	Model string  `json:"model"`
	Count uint64  `json:"count"`
	P50MS float64 `json:"p50_ms"`
	P95MS float64 `json:"p95_ms"`
	P99MS float64 `json:"p99_ms"`
}

// OverallKey names the whole-server measurement in ParseStatsQuantiles'
// result (distinct from any legal serving key, which cannot start with "_").
const OverallKey = "_all"

// ParseStatsQuantiles extracts calibration targets from a servd /v1/stats
// JSON document: the overall serving latency histogram under OverallKey plus
// every per-model histogram with at least one sample. The per-model overflow
// bucket is skipped — it blends arbitrary models and would poison a fit.
func ParseStatsQuantiles(r io.Reader) (map[string]MeasuredQuantiles, error) {
	var doc struct {
		Serving struct {
			Latency  metrics.HistogramSnapshot `json:"latency"`
			PerModel map[string]struct {
				Latency metrics.HistogramSnapshot `json:"latency"`
			} `json:"per_model"`
		} `json:"serving"`
	}
	if err := json.NewDecoder(r).Decode(&doc); err != nil {
		return nil, fmt.Errorf("sim: decoding stats: %w", err)
	}
	out := make(map[string]MeasuredQuantiles)
	add := func(key string, h metrics.HistogramSnapshot) {
		if h.Count == 0 {
			return
		}
		out[key] = MeasuredQuantiles{
			Model: key, Count: h.Count,
			P50MS: h.P50MS, P95MS: h.P95MS, P99MS: h.P99MS,
		}
	}
	add(OverallKey, doc.Serving.Latency)
	for name, m := range doc.Serving.PerModel {
		if name == metrics.OverflowModelKey {
			continue
		}
		add(name, m.Latency)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("sim: stats document holds no latency samples")
	}
	return out, nil
}

// Calibration is the fit result: the two service-time scales, the error of
// the fitted simulation against the measurements, and the matched points.
type Calibration struct {
	WorkScale     float64 `json:"work_scale"`
	OverheadScale float64 `json:"overhead_scale"`
	// MAPEPercent is the mean absolute percentage error over every matched
	// (model, quantile) point; PearsonR the linear correlation of simulated
	// vs measured values over the same points.
	MAPEPercent float64 `json:"mape_percent"`
	PearsonR    float64 `json:"pearson_r"`
	Points      int     `json:"points"`
}

// calPoint is one matched (simulated, measured) quantile pair.
type calPoint struct{ sim, meas float64 }

// Calibrate fits the simulator's WorkScale and OverheadScale so its
// p50/p95/p99 — per model and overall — track the measured quantiles, by
// coordinate descent over multiplicative grids (three narrowing rounds per
// scale). The returned Calibration carries the error of the *fitted*
// configuration; callers enforce their own acceptance bar (the CI gate uses
// MAPE <= 15%).
func Calibrate(cfg Config, arrivals []Arrival, measured map[string]MeasuredQuantiles) (Calibration, error) {
	cfg = cfg.withDefaults()
	if len(measured) == 0 {
		return Calibration{}, fmt.Errorf("sim: no measured quantiles to calibrate against")
	}

	eval := func(work, overhead float64) (float64, []calPoint, error) {
		c := cfg
		c.WorkScale, c.OverheadScale = work, overhead
		rep, err := Run(c, arrivals)
		if err != nil {
			return 0, nil, err
		}
		pts := matchPoints(rep, measured)
		if len(pts) == 0 {
			return 0, nil, fmt.Errorf("sim: no overlap between simulated models and measured stats")
		}
		return mape(pts), pts, nil
	}

	work, overhead := 1.0, 1.0
	best, pts, err := eval(work, overhead)
	if err != nil {
		return Calibration{}, err
	}
	// Round 1 is a joint lattice over a 4x band: the two scales trade off
	// against each other (more overhead can imitate more work at small
	// batches), so axis-at-a-time search from (1,1) walks into compensating
	// optima. The joint sweep lands on the right basin first.
	lattice := []float64{0.5, 1 / math.Sqrt2, 1, math.Sqrt2, 2}
	for _, wm := range lattice {
		for _, om := range lattice {
			if wm == 1 && om == 1 {
				continue
			}
			if e, p, err := eval(wm, om); err == nil && e < best {
				best, pts, work, overhead = e, p, wm, om
			}
		}
	}
	// Then narrowing coordinate refinement around the incumbent basin.
	for _, span := range []float64{1.2, 1.08, 1.03} {
		grid := []float64{1 / (span * span), 1 / span, span, span * span}
		for _, m := range grid {
			if cand := work * m; cand > 0 {
				if e, p, err := eval(cand, overhead); err == nil && e < best {
					best, pts, work = e, p, cand
				}
			}
		}
		for _, m := range grid {
			if cand := overhead * m; cand > 0 {
				if e, p, err := eval(work, cand); err == nil && e < best {
					best, pts, overhead = e, p, cand
				}
			}
		}
	}

	return Calibration{
		WorkScale: work, OverheadScale: overhead,
		MAPEPercent: best, PearsonR: pearson(pts), Points: len(pts),
	}, nil
}

// matchPoints pairs simulated and measured p50/p95/p99 for every key both
// sides know, in sorted key order for determinism.
func matchPoints(rep Report, measured map[string]MeasuredQuantiles) []calPoint {
	simQ := map[string]QuantileSet{OverallKey: rep.Latency}
	for _, m := range rep.Models {
		simQ[m.Model] = m.Latency
	}
	keys := make([]string, 0, len(measured))
	for k := range measured {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var pts []calPoint
	for _, k := range keys {
		sq, ok := simQ[k]
		if !ok || sq.Count == 0 {
			continue
		}
		mq := measured[k]
		for _, pair := range [3][2]float64{
			{sq.P50MS, mq.P50MS}, {sq.P95MS, mq.P95MS}, {sq.P99MS, mq.P99MS},
		} {
			if pair[1] > 0 {
				pts = append(pts, calPoint{sim: pair[0], meas: pair[1]})
			}
		}
	}
	return pts
}

// mape is the mean absolute percentage error of simulated vs measured.
func mape(pts []calPoint) float64 {
	if len(pts) == 0 {
		return math.Inf(1)
	}
	sum := 0.0
	for _, p := range pts {
		sum += math.Abs(p.sim-p.meas) / p.meas
	}
	return 100 * sum / float64(len(pts))
}

// pearson is the linear correlation of simulated vs measured values; 0 when
// either side is constant (no linear signal to report).
func pearson(pts []calPoint) float64 {
	n := float64(len(pts))
	if n < 2 {
		return 0
	}
	var mx, my float64
	for _, p := range pts {
		mx += p.sim
		my += p.meas
	}
	mx /= n
	my /= n
	var sxy, sxx, syy float64
	for _, p := range pts {
		dx, dy := p.sim-mx, p.meas-my
		sxy += dx * dy
		sxx += dx * dx
		syy += dy * dy
	}
	if sxx == 0 || syy == 0 {
		return 0
	}
	return sxy / math.Sqrt(sxx*syy)
}
