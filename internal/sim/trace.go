package sim

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"net/http"
	"sync"
	"time"

	"drainnas/internal/api"
	"drainnas/internal/route"
	"drainnas/internal/tensor"
)

// TraceEvent is one recorded arrival, one JSONL line in a -trace file:
// when it arrived (milliseconds since the trace started), which serving key
// it asked for (precision suffix included), its SLO class and chip shape.
// The payload itself is deliberately not recorded — replay synthesizes
// deterministic data from a seed — so traces stay small and shareable.
type TraceEvent struct {
	TMS   float64 `json:"t_ms"`
	Model string  `json:"model"`
	SLO   string  `json:"slo,omitempty"`
	C     int     `json:"c"`
	H     int     `json:"h"`
	W     int     `json:"w"`
}

// maxTraceDim bounds recorded chip dimensions; anything past it is a
// corrupt line, not a plausible input.
const maxTraceDim = 1 << 20

// maxTraceTMS bounds a recorded offset to ~11.5 days of milliseconds: far
// past any real trace, and small enough that the ns conversion in at() is
// exact and cannot overflow time.Duration.
const maxTraceTMS = 1e9

// Validate reports why the event is unusable, or nil. It is the shared
// gate for both the reader (untrusted files) and the recorder.
func (ev TraceEvent) Validate() error {
	if math.IsNaN(ev.TMS) || ev.TMS < 0 || ev.TMS > maxTraceTMS {
		return fmt.Errorf("t_ms %v out of range [0, %g]", ev.TMS, float64(maxTraceTMS))
	}
	if ev.Model == "" {
		return fmt.Errorf("empty model key")
	}
	if len(ev.Model) > 256 {
		return fmt.Errorf("model key %d bytes long, max 256", len(ev.Model))
	}
	for _, d := range [3]int{ev.C, ev.H, ev.W} {
		if d < 1 || d > maxTraceDim {
			return fmt.Errorf("chip shape %dx%dx%d out of range", ev.C, ev.H, ev.W)
		}
	}
	if ev.SLO != "" {
		if _, err := route.ParseClass(ev.SLO); err != nil {
			return err
		}
	}
	return nil
}

// at converts the recorded offset back to a virtual-clock instant. The
// round-trip is exact: TMS values are produced as ns-resolution offsets,
// encoding/json prints float64s with the shortest round-trip representation,
// and round(TMS·1e6) recovers the nanosecond count exactly for any trace
// under ~35 years long.
func (ev TraceEvent) at() time.Duration {
	return time.Duration(math.Round(ev.TMS * float64(time.Millisecond)))
}

// TraceWriter records serving arrivals as JSONL, safe for concurrent
// handlers. The zero time base is the first record (so traces start at
// t_ms 0 regardless of process uptime).
type TraceWriter struct {
	mu    sync.Mutex
	w     *bufio.Writer
	c     io.Closer
	start time.Time
	n     uint64
}

// NewTraceWriter wraps w; if w is also an io.Closer, Close closes it.
func NewTraceWriter(w io.Writer) *TraceWriter {
	tw := &TraceWriter{w: bufio.NewWriter(w)}
	if c, ok := w.(io.Closer); ok {
		tw.c = c
	}
	return tw
}

// Record appends one arrival with the current wall-clock offset. Invalid
// events (e.g. an unparseable shape slipping past the handler) are dropped
// rather than corrupting the file.
func (t *TraceWriter) Record(model, slo string, shape []int) {
	if len(shape) != 3 {
		return
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	now := time.Now()
	if t.n == 0 {
		t.start = now
	}
	ev := TraceEvent{
		TMS:   float64(now.Sub(t.start)) / float64(time.Millisecond),
		Model: model, SLO: slo, C: shape[0], H: shape[1], W: shape[2],
	}
	if ev.Validate() != nil {
		return
	}
	line, err := json.Marshal(ev)
	if err != nil {
		return
	}
	t.w.Write(line)
	t.w.WriteByte('\n')
	t.n++
}

// Count reports how many events have been recorded.
func (t *TraceWriter) Count() uint64 {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.n
}

// Close flushes buffered lines and closes the underlying writer if it is
// closable.
func (t *TraceWriter) Close() error {
	t.mu.Lock()
	defer t.mu.Unlock()
	err := t.w.Flush()
	if t.c != nil {
		if cerr := t.c.Close(); err == nil {
			err = cerr
		}
	}
	return err
}

// maxTraceLine bounds one JSONL line; a valid event is well under 1 KB.
const maxTraceLine = 64 << 10

// ReadTrace decodes a JSONL trace, validating every event and reporting
// errors with their line number. Blank lines are skipped. Events need not
// be sorted on disk; TraceArrivals orders them.
func ReadTrace(r io.Reader) ([]TraceEvent, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 4096), maxTraceLine)
	var out []TraceEvent
	line := 0
	for sc.Scan() {
		line++
		raw := bytes.TrimSpace(sc.Bytes())
		if len(raw) == 0 {
			continue
		}
		var ev TraceEvent
		dec := json.NewDecoder(bytes.NewReader(raw))
		if err := dec.Decode(&ev); err != nil {
			return nil, fmt.Errorf("trace line %d: %w", line, err)
		}
		if err := ev.Validate(); err != nil {
			return nil, fmt.Errorf("trace line %d: %w", line, err)
		}
		out = append(out, ev)
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("trace line %d: %w", line+1, err)
	}
	return out, nil
}

// WriteTrace encodes events as JSONL, one line each.
func WriteTrace(w io.Writer, events []TraceEvent) error {
	bw := bufio.NewWriter(w)
	for _, ev := range events {
		if err := ev.Validate(); err != nil {
			return err
		}
		line, err := json.Marshal(ev)
		if err != nil {
			return err
		}
		bw.Write(line)
		bw.WriteByte('\n')
	}
	return bw.Flush()
}

// TraceArrivals converts a decoded trace into the simulator's arrival
// stream, sorted by (time, file order). Feeding the result to Run replays
// the recorded traffic against any candidate configuration.
func TraceArrivals(events []TraceEvent) ([]Arrival, error) {
	out := make([]Arrival, 0, len(events))
	for i, ev := range events {
		if err := ev.Validate(); err != nil {
			return nil, fmt.Errorf("trace event %d: %w", i, err)
		}
		class := route.ClassStandard
		if ev.SLO != "" {
			class, _ = route.ParseClass(ev.SLO)
		}
		out = append(out, Arrival{
			At: ev.at(), Model: ev.Model, Class: class,
			C: ev.C, H: ev.H, W: ev.W,
		})
	}
	// Stable: equal-time events keep file order, matching the recorder's
	// observation order.
	for i := 1; i < len(out); i++ {
		for j := i; j > 0 && out[j].At < out[j-1].At; j-- {
			out[j], out[j-1] = out[j-1], out[j]
		}
	}
	return out, nil
}

// EventsFromArrivals converts a synthetic arrival stream into trace events
// (the inverse of TraceArrivals), so generated workloads can be saved and
// shared in the same format servd records.
func EventsFromArrivals(arrivals []Arrival) []TraceEvent {
	out := make([]TraceEvent, 0, len(arrivals))
	for _, a := range arrivals {
		c, h, w := a.C, a.H, a.W
		if c < 1 {
			c = 1
		}
		if h < 1 {
			h = 1
		}
		if w < 1 {
			w = 1
		}
		out = append(out, TraceEvent{
			TMS:   float64(a.At) / float64(time.Millisecond),
			Model: a.Model, SLO: a.Class.String(), C: c, H: h, W: w,
		})
	}
	return out
}

// ReplayHTTP replays a trace against a live server at baseURL, preserving
// recorded pacing scaled by speed (2 = twice as fast; <= 0 means 1).
// Request payloads are synthesized deterministically from seed, so two
// replays of the same trace send byte-identical bodies. It returns the
// number of successful responses and the first transport error, pushing on
// through per-request HTTP failures (a 429 under overload is data, not a
// reason to stop).
func ReplayHTTP(ctx context.Context, client *http.Client, baseURL string, events []TraceEvent, speed float64, seed uint64) (int, error) {
	if client == nil {
		client = http.DefaultClient
	}
	if speed <= 0 {
		speed = 1
	}
	arrivals, err := TraceArrivals(events)
	if err != nil {
		return 0, err
	}
	rng := tensor.NewRNG(seed)
	start := time.Now()
	ok := 0
	for _, a := range arrivals {
		due := start.Add(time.Duration(float64(a.At) / speed))
		if d := time.Until(due); d > 0 {
			select {
			case <-time.After(d):
			case <-ctx.Done():
				return ok, ctx.Err()
			}
		}
		data := make([]float32, a.C*a.H*a.W)
		for i := range data {
			data[i] = rng.Float32()
		}
		body, err := json.Marshal(api.PredictRequest{
			Model: a.Model, Shape: []int{a.C, a.H, a.W}, Data: data,
			SLO: a.Class.String(),
		})
		if err != nil {
			return ok, err
		}
		req, err := http.NewRequestWithContext(ctx, http.MethodPost, baseURL+"/v1/predict", bytes.NewReader(body))
		if err != nil {
			return ok, err
		}
		req.Header.Set("Content-Type", "application/json")
		resp, err := client.Do(req)
		if err != nil {
			if ctx.Err() != nil {
				return ok, ctx.Err()
			}
			return ok, err
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode == http.StatusOK {
			ok++
		}
	}
	return ok, nil
}
