package sim

import (
	"testing"
	"time"

	"drainnas/internal/route"
)

func TestScanWorkloadArrivals(t *testing.T) {
	s := ScanWorkload{
		Model: "paper", Class: route.ClassBatch,
		Tiles: 12, Window: 4, Pace: 2 * time.Millisecond,
		C: 5, S: 64,
	}
	arr, err := s.Arrivals()
	if err != nil {
		t.Fatal(err)
	}
	if len(arr) != 12 {
		t.Fatalf("got %d arrivals, want 12", len(arr))
	}
	// The first window lands at t=0; each later tile is paced one slot on.
	for i := 0; i < 4; i++ {
		if arr[i].At != 0 {
			t.Fatalf("arrival %d at %v, want 0 (inside the initial window)", i, arr[i].At)
		}
	}
	for i := 4; i < 12; i++ {
		want := time.Duration(i-3) * 2 * time.Millisecond
		if arr[i].At != want {
			t.Fatalf("arrival %d at %v, want %v", i, arr[i].At, want)
		}
		if arr[i].At <= arr[i-1].At && i > 4 {
			t.Fatalf("arrivals not strictly paced at %d", i)
		}
	}
	for _, a := range arr {
		if a.Model != "paper" || a.Class != route.ClassBatch || a.C != 5 || a.H != 64 || a.W != 64 {
			t.Fatalf("arrival metadata %+v", a)
		}
	}
	// Determinism: same description, same stream.
	arr2, _ := s.Arrivals()
	for i := range arr {
		if arr[i] != arr2[i] {
			t.Fatalf("arrival %d differs across expansions", i)
		}
	}
}

func TestScanWorkloadValidation(t *testing.T) {
	if _, err := (ScanWorkload{Tiles: 0}).Arrivals(); err == nil {
		t.Fatal("want error for zero tiles")
	}
	if _, err := (ScanWorkload{Tiles: 4, Pace: -time.Millisecond}).Arrivals(); err == nil {
		t.Fatal("want error for negative pace")
	}
	// Window defaults apply.
	arr, err := (ScanWorkload{Model: "m", Tiles: 10, Pace: time.Millisecond}).Arrivals()
	if err != nil || arr[7].At != 0 || arr[8].At == 0 {
		t.Fatalf("default window: err=%v arr[7]=%v arr[8]=%v", err, arr[7].At, arr[8].At)
	}
}
