package sim

import (
	"container/heap"
	"fmt"
	"math"
	"sort"
	"time"

	"drainnas/internal/latmeter"
	"drainnas/internal/route"
)

// Policy selects how the simulated router places a request on a replica.
type Policy int

// The simulated placement policies (the deterministic subset of
// internal/route's policy set; affinity degenerates to a static partition
// under a fixed fleet, so round-robin and least-loaded are the interesting
// capacity-planning shapes).
const (
	PolicyRoundRobin Policy = iota
	PolicyLeastLoaded
)

// String names the policy as accepted by -policy.
func (p Policy) String() string {
	if p == PolicyLeastLoaded {
		return "least-loaded"
	}
	return "round-robin"
}

// ParsePolicy maps the flag name to a policy; empty means round-robin.
func ParsePolicy(s string) (Policy, error) {
	switch s {
	case "", "round-robin", "rr":
		return PolicyRoundRobin, nil
	case "least-loaded", "ll":
		return PolicyLeastLoaded, nil
	default:
		return PolicyRoundRobin, fmt.Errorf("sim: unknown policy %q (want round-robin or least-loaded)", s)
	}
}

// Config describes the simulated deployment: the same knobs cmd/servd and
// cmd/router expose, plus the per-model service models that stand in for
// plan execution.
type Config struct {
	// Replicas is the fleet size; Workers the per-replica execution pool.
	Replicas int
	Workers  int

	// MaxBatch / MaxDelay / QueueCap mirror serve.Options: a per-model
	// batch flushes at MaxBatch requests or MaxDelay after its first, and
	// each replica admits at most QueueCap unfinished requests.
	MaxBatch int
	MaxDelay time.Duration
	QueueCap int

	// Policy places requests on replicas.
	Policy Policy

	// AdmitRate / AdmitBurst configure router token-bucket admission
	// (tokens per second / bucket size); AdmitRate <= 0 disables it.
	AdmitRate, AdmitBurst float64
	// MaxInFlight bounds concurrently dispatched requests at the router
	// gate, granted in Sched order; 0 = unlimited.
	MaxInFlight int
	Sched       route.SchedMode

	// Models maps each serving key the workload references (including
	// "@int8" keys) to its service model, typically latmeter's
	// Device.Service over the model's cost graph.
	Models map[string]latmeter.ServiceModel
	// WorkScale / OverheadScale are the calibration knobs applied to every
	// service model (see Calibrate); <= 0 means 1.
	WorkScale, OverheadScale float64
	// NetworkMS is a fixed per-request overhead added to every completed
	// request's latency (transport + envelope cost outside the replica).
	NetworkMS float64

	// Horizon is the nominal workload duration, used as the denominator
	// floor for throughput and utilization; the simulation itself always
	// drains every admitted request.
	Horizon time.Duration

	// OnComplete, when set, observes every completed request (serving key,
	// end-to-end latency) in completion order — the hook fixture generation
	// and external collectors use. It must not mutate simulator state.
	OnComplete func(model string, latency time.Duration)
}

func (c Config) withDefaults() Config {
	if c.Replicas <= 0 {
		c.Replicas = 1
	}
	if c.Workers <= 0 {
		c.Workers = 1
	}
	if c.MaxBatch <= 0 {
		c.MaxBatch = 8
	}
	if c.MaxDelay <= 0 {
		c.MaxDelay = 2 * time.Millisecond
	}
	if c.QueueCap <= 0 {
		c.QueueCap = 256
	}
	if c.WorkScale <= 0 {
		c.WorkScale = 1
	}
	if c.OverheadScale <= 0 {
		c.OverheadScale = 1
	}
	if c.AdmitRate > 0 && c.AdmitBurst <= 0 {
		c.AdmitBurst = c.AdmitRate
	}
	return c
}

// simReq is one request in flight through the simulated pipeline.
type simReq struct {
	arr   Arrival
	seq   uint64  // global arrival order; the deterministic tie-break
	estMS float64 // SJF estimate: the model's batch-1 service prediction
	index int     // gate-heap index
}

// schedHeap orders gate waiters exactly as route.waiterHeap does: priority
// (interactive > standard > batch) or shortest-job-first, FCFS within ties.
type schedHeap struct {
	mode route.SchedMode
	ws   []*simReq
}

func (h *schedHeap) Len() int { return len(h.ws) }

func (h *schedHeap) Less(i, j int) bool {
	a, b := h.ws[i], h.ws[j]
	switch h.mode {
	case route.Priority:
		if pa, pb := classRank(a.arr.Class), classRank(b.arr.Class); pa != pb {
			return pa > pb
		}
	case route.SJF:
		if a.estMS != b.estMS {
			return a.estMS < b.estMS
		}
	}
	return a.seq < b.seq
}

func (h *schedHeap) Swap(i, j int) {
	h.ws[i], h.ws[j] = h.ws[j], h.ws[i]
	h.ws[i].index = i
	h.ws[j].index = j
}

func (h *schedHeap) Push(x any) {
	r := x.(*simReq)
	r.index = len(h.ws)
	h.ws = append(h.ws, r)
}

func (h *schedHeap) Pop() any {
	old := h.ws
	n := len(old)
	r := old[n-1]
	old[n-1] = nil
	r.index = -1
	h.ws = old[:n-1]
	return r
}

// classRank mirrors route.SLOClass.priority (unexported there).
func classRank(c route.SLOClass) int {
	switch c {
	case route.ClassInteractive:
		return 2
	case route.ClassStandard:
		return 1
	default:
		return 0
	}
}

// groupSim is one forming batch: same model key, generation-stamped so a
// stale MaxDelay event cannot flush a later incarnation (the same
// generation discipline serve.Server uses).
type groupSim struct {
	reqs []*simReq
	gen  uint64
}

type batchSim struct {
	model string
	reqs  []*simReq
}

// replicaSim models one serve.Server: bounded admission, per-model batch
// formation, a bounded worker pool executing service-model durations.
type replicaSim struct {
	id       string
	load     int // admitted-but-unfinished (QueueCap's denominator)
	groups   map[string]*groupSim
	genSeq   uint64
	busy     int
	backlog  []*batchSim // cut batches waiting for a worker, FIFO
	requests uint64
	batches  uint64
	sizeSum  uint64
	busyMS   float64
}

// cluster is the whole simulated deployment plus its accounting.
type cluster struct {
	cfg  Config
	loop *Loop
	res  *collector

	// token bucket state (virtual time).
	tokens     float64
	lastRefill time.Duration

	// router gate.
	inUse int
	gate  schedHeap

	reps   []*replicaSim
	rrNext int
}

// Run simulates the arrival stream through the configured cluster and
// returns the deterministic report. Every model key the stream references
// must be present in cfg.Models.
func Run(cfg Config, arrivals []Arrival) (Report, error) {
	cfg = cfg.withDefaults()
	for _, a := range arrivals {
		if _, ok := cfg.Models[a.Model]; !ok {
			return Report{}, fmt.Errorf("sim: arrival references model %q with no service model", a.Model)
		}
	}

	c := &cluster{
		cfg:    cfg,
		loop:   NewLoop(),
		res:    newCollector(),
		tokens: cfg.AdmitBurst,
		gate:   schedHeap{mode: cfg.Sched},
	}
	for i := 0; i < cfg.Replicas; i++ {
		c.reps = append(c.reps, &replicaSim{
			id:     fmt.Sprintf("replica-%d", i),
			groups: make(map[string]*groupSim),
		})
	}

	for i, a := range arrivals {
		r := &simReq{arr: a, seq: uint64(i), estMS: cfg.Models[a.Model].BatchMS(1)}
		c.loop.At(a.At, func() { c.arrive(r) })
	}
	c.loop.Run(0) // drain: every admitted request completes

	end := c.loop.Now()
	if cfg.Horizon > end {
		end = cfg.Horizon
	}
	return c.res.report(cfg, c.reps, end), nil
}

// arrive runs the admission front: token bucket, then the scheduling gate.
func (c *cluster) arrive(r *simReq) {
	c.res.arrived(r.arr)
	if !c.allow() {
		c.res.throttled(r.arr)
		return
	}
	if c.cfg.MaxInFlight > 0 && c.inUse >= c.cfg.MaxInFlight {
		heap.Push(&c.gate, r)
		return
	}
	c.inUse++
	c.place(r)
}

// allow is the virtual-clock token bucket.
func (c *cluster) allow() bool {
	if c.cfg.AdmitRate <= 0 {
		return true
	}
	now := c.loop.Now()
	c.tokens = math.Min(c.cfg.AdmitBurst,
		c.tokens+(now-c.lastRefill).Seconds()*c.cfg.AdmitRate)
	c.lastRefill = now
	if c.tokens >= 1 {
		c.tokens--
		return true
	}
	return false
}

// place picks a replica by policy and joins its batcher.
func (c *cluster) place(r *simReq) {
	var rep *replicaSim
	switch c.cfg.Policy {
	case PolicyLeastLoaded:
		rep = c.reps[0]
		for _, cand := range c.reps[1:] {
			if cand.load < rep.load {
				rep = cand
			}
		}
	default:
		rep = c.reps[c.rrNext%len(c.reps)]
		c.rrNext++
	}

	if rep.load >= c.cfg.QueueCap {
		c.res.rejected(r.arr)
		c.releaseGate(1)
		return
	}
	rep.load++
	rep.requests++

	g := rep.groups[r.arr.Model]
	if g == nil {
		g = &groupSim{gen: rep.genSeq}
		rep.genSeq++
		rep.groups[r.arr.Model] = g
		gen := g.gen
		model := r.arr.Model
		c.loop.After(c.cfg.MaxDelay, func() { c.flushTimer(rep, model, gen) })
	}
	g.reqs = append(g.reqs, r)
	if len(g.reqs) >= c.cfg.MaxBatch {
		c.cut(rep, r.arr.Model, g)
	}
}

// flushTimer is the MaxDelay deadline for a group generation; stale
// generations are no-ops, exactly as in serve.Server.
func (c *cluster) flushTimer(rep *replicaSim, model string, gen uint64) {
	g := rep.groups[model]
	if g == nil || g.gen != gen || len(g.reqs) == 0 {
		return
	}
	c.cut(rep, model, g)
}

// cut takes the group's batch and hands it to the worker pool (or the
// backlog when every worker is busy — the pool-saturation backpressure).
func (c *cluster) cut(rep *replicaSim, model string, g *groupSim) {
	delete(rep.groups, model)
	b := &batchSim{model: model, reqs: g.reqs}
	g.reqs = nil
	if rep.busy < c.cfg.Workers {
		c.start(rep, b)
	} else {
		rep.backlog = append(rep.backlog, b)
	}
}

// start begins one stacked forward: its duration comes from the model's
// service coefficients under the calibration scales.
func (c *cluster) start(rep *replicaSim, b *batchSim) {
	rep.busy++
	sm := c.cfg.Models[b.model].Scaled(c.cfg.WorkScale, c.cfg.OverheadScale)
	durMS := sm.BatchMS(len(b.reqs))
	rep.busyMS += durMS
	c.loop.After(time.Duration(durMS*float64(time.Millisecond)), func() { c.complete(rep, b) })
}

// complete delivers a finished batch: per-request latencies, accounting,
// gate releases, and the next backlog batch if one is waiting.
func (c *cluster) complete(rep *replicaSim, b *batchSim) {
	rep.busy--
	rep.batches++
	rep.sizeSum += uint64(len(b.reqs))
	now := c.loop.Now()
	net := time.Duration(c.cfg.NetworkMS * float64(time.Millisecond))
	for _, r := range b.reqs {
		lat := now - r.arr.At + net
		c.res.completed(r.arr, b.model, len(b.reqs), lat)
		if c.cfg.OnComplete != nil {
			c.cfg.OnComplete(b.model, lat)
		}
	}
	rep.load -= len(b.reqs)
	c.releaseGate(len(b.reqs))
	if len(rep.backlog) > 0 && rep.busy < c.cfg.Workers {
		next := rep.backlog[0]
		rep.backlog = rep.backlog[1:]
		c.start(rep, next)
	}
}

// releaseGate returns n dispatch slots and grants parked waiters in
// scheduler order.
func (c *cluster) releaseGate(n int) {
	if c.cfg.MaxInFlight <= 0 {
		return
	}
	c.inUse -= n
	for c.inUse < c.cfg.MaxInFlight && c.gate.Len() > 0 {
		r := heap.Pop(&c.gate).(*simReq)
		c.inUse++
		c.place(r)
	}
}

// collector accumulates per-request outcomes; quantiles are computed
// exactly from the sorted samples at report time, not through histogram
// buckets — the simulator is the ground truth calibration compares the
// bucketed measurements against.
type collector struct {
	overall  *bucketStats
	byClass  map[string]*bucketStats
	byModel  map[string]*bucketStats
	batchSum uint64
	batchN   uint64
}

type bucketStats struct {
	arrived, throttled, rejected, completed uint64
	latMS                                   []float64
}

func newCollector() *collector {
	return &collector{
		overall: &bucketStats{},
		byClass: make(map[string]*bucketStats),
		byModel: make(map[string]*bucketStats),
	}
}

func (c *collector) class(a Arrival) *bucketStats {
	k := a.Class.String()
	b := c.byClass[k]
	if b == nil {
		b = &bucketStats{}
		c.byClass[k] = b
	}
	return b
}

func (c *collector) model(key string) *bucketStats {
	b := c.byModel[key]
	if b == nil {
		b = &bucketStats{}
		c.byModel[key] = b
	}
	return b
}

func (c *collector) arrived(a Arrival)   { c.overall.arrived++; c.class(a).arrived++ }
func (c *collector) throttled(a Arrival) { c.overall.throttled++; c.class(a).throttled++ }
func (c *collector) rejected(a Arrival)  { c.overall.rejected++; c.class(a).rejected++ }

func (c *collector) completed(a Arrival, model string, batch int, lat time.Duration) {
	ms := float64(lat) / float64(time.Millisecond)
	c.overall.completed++
	c.overall.latMS = append(c.overall.latMS, ms)
	cb := c.class(a)
	cb.completed++
	cb.latMS = append(cb.latMS, ms)
	mb := c.model(model)
	mb.completed++
	mb.latMS = append(mb.latMS, ms)
	c.batchSum += uint64(batch)
	c.batchN++
}

func (c *collector) report(cfg Config, reps []*replicaSim, end time.Duration) Report {
	rep := Report{
		DurationMS: float64(end) / float64(time.Millisecond),
		Replicas:   cfg.Replicas,
		Arrived:    c.overall.arrived,
		Throttled:  c.overall.throttled,
		Rejected:   c.overall.rejected,
		Completed:  c.overall.completed,
		Latency:    summarize(c.overall.latMS),
	}
	if end > 0 {
		rep.ThroughputRPS = float64(c.overall.completed) / end.Seconds()
	}
	if c.batchN > 0 {
		rep.MeanBatch = float64(c.batchSum) / float64(c.batchN)
	}
	for _, k := range sortedKeys(c.byClass) {
		b := c.byClass[k]
		rep.Classes = append(rep.Classes, ClassReport{
			Class: k, Arrived: b.arrived, Throttled: b.throttled,
			Rejected: b.rejected, Completed: b.completed,
			Latency: summarize(b.latMS),
		})
	}
	for _, k := range sortedKeys(c.byModel) {
		b := c.byModel[k]
		rep.Models = append(rep.Models, ModelReport{
			Model: k, Completed: b.completed, Latency: summarize(b.latMS),
		})
	}
	for _, r := range reps {
		rr := ReplicaReport{ID: r.id, Requests: r.requests, Batches: r.batches}
		if r.batches > 0 {
			rr.MeanBatch = float64(r.sizeSum) / float64(r.batches)
		}
		if end > 0 && cfg.Workers > 0 {
			rr.Utilization = r.busyMS / (float64(end) / float64(time.Millisecond) * float64(cfg.Workers))
		}
		rep.ReplicaStats = append(rep.ReplicaStats, rr)
	}
	return rep
}

func sortedKeys[V any](m map[string]V) []string {
	ks := make([]string, 0, len(m))
	for k := range m {
		ks = append(ks, k)
	}
	sort.Strings(ks)
	return ks
}
