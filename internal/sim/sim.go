// Package sim is a deterministic discrete-event simulator of the
// servd/router serving pipeline, closing the loop the paper leaves open
// between predicted and measured latency at the *serving* tier: given the
// analytic per-model cost models from internal/latmeter and the pipeline
// semantics of internal/serve and internal/route, it answers capacity
// questions — "how many replicas for this traffic at p99 < 50ms?" — without
// hardware.
//
// A simulated request flows through the same stages a real one does:
//
//	arrival → admission (token bucket + SLO scheduling gate)
//	        → replica placement (round-robin / least-loaded)
//	        → batch formation (MaxDelay / MaxBatch, per model key)
//	        → plan execution (latmeter service models, fp32 and "@int8")
//	        → response
//
// Everything runs off a virtual clock (Loop): events are processed in
// (time, schedule-order) sequence, all randomness comes from seeded
// tensor.RNG streams, and reports render with fixed formatting — so the
// same seed (or the same recorded trace) produces a byte-identical report,
// the property the `make sim-replay` CI gate diffs for.
//
// The package also owns the serving-trace format (trace.go): servd records
// live arrivals as JSONL with -trace, and the same file replays either into
// the simulator (TraceArrivals + Run) or against a live server (ReplayHTTP)
// for deterministic load tests. calibrate.go fits the simulator's two
// service-time scales to measured /v1/stats histograms and reports MAPE and
// Pearson r of simulated vs measured p50/p95/p99.
package sim

import (
	"container/heap"
	"time"
)

// event is one scheduled state transition: a callback pinned to a virtual
// instant, ordered by (at, seq) so simultaneous events run in the order
// they were scheduled — the total order determinism rests on.
type event struct {
	at  time.Duration
	seq uint64
	fn  func()
}

type eventHeap []*event

func (h eventHeap) Len() int { return len(h) }

func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}

func (h eventHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }

func (h *eventHeap) Push(x any) { *h = append(*h, x.(*event)) }

func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return e
}

// Loop is the discrete-event core: a virtual clock that only moves when the
// next event is taken off the queue. It is single-goroutine by design — the
// determinism comes from there being exactly one timeline.
type Loop struct {
	now time.Duration
	seq uint64
	pq  eventHeap
}

// NewLoop returns a loop at virtual time 0 with an empty queue.
func NewLoop() *Loop { return &Loop{} }

// Now returns the current virtual time.
func (l *Loop) Now() time.Duration { return l.now }

// At schedules fn at absolute virtual time t; times in the past clamp to
// now (the event still runs, immediately after the current one).
func (l *Loop) At(t time.Duration, fn func()) {
	if t < l.now {
		t = l.now
	}
	heap.Push(&l.pq, &event{at: t, seq: l.seq, fn: fn})
	l.seq++
}

// After schedules fn d past the current virtual time.
func (l *Loop) After(d time.Duration, fn func()) { l.At(l.now+d, fn) }

// Pending reports how many events are queued.
func (l *Loop) Pending() int { return l.pq.Len() }

// Run processes events in order until the queue empties or the next event
// lies beyond until (until 0 = drain everything). The clock finishes at
// until when a horizon is given, so utilization denominators are stable.
func (l *Loop) Run(until time.Duration) {
	for l.pq.Len() > 0 {
		next := l.pq[0]
		if until > 0 && next.at > until {
			break
		}
		heap.Pop(&l.pq)
		l.now = next.at
		next.fn()
	}
	if until > l.now {
		l.now = until
	}
}
