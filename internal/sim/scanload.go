package sim

import (
	"fmt"
	"time"

	"drainnas/internal/route"
)

// ScanWorkload describes a whole-watershed scan as a capsim arrival
// stream: one model scanned tile by tile under one SLO class, paced the
// way internal/scan's bounded sliding window paces it — the first Window
// tiles arrive together, then one tile per Pace as completions free
// window slots. Unlike the random workloads it uses no RNG: a spatial
// scan is maximally correlated load, the exact opposite of Poisson
// traffic, which is what makes it worth simulating against the same
// batcher and router configuration.
type ScanWorkload struct {
	Model  string
	Class  route.SLOClass
	Tiles  int
	Window int
	// Pace is the assumed per-tile completion interval once the window is
	// full (roughly the backend's batch-1 service time).
	Pace time.Duration
	// C, S are the chip channels and side (metadata in traces, like
	// Client.C/H/W).
	C, S int
}

// Arrivals expands the scan into its deterministic arrival stream.
func (s ScanWorkload) Arrivals() ([]Arrival, error) {
	if s.Tiles <= 0 {
		return nil, fmt.Errorf("sim: scan workload needs tiles > 0, got %d", s.Tiles)
	}
	window := s.Window
	if window <= 0 {
		window = 8
	}
	if s.Pace < 0 {
		return nil, fmt.Errorf("sim: scan pace %v, want >= 0", s.Pace)
	}
	out := make([]Arrival, 0, s.Tiles)
	for i := 0; i < s.Tiles; i++ {
		var at time.Duration
		if i >= window {
			at = time.Duration(i-window+1) * s.Pace
		}
		out = append(out, Arrival{At: at, Model: s.Model, Class: s.Class, C: s.C, H: s.S, W: s.S})
	}
	return out, nil
}
