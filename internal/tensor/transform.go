package tensor

import "fmt"

// FlipH mirrors an (N, C, H, W) tensor horizontally (left–right).
func FlipH(t *Tensor) *Tensor {
	n, c, h, w := dims4("FlipH input", t)
	out := New(n, c, h, w)
	forEach(n*c*h, func(lo, hi int) {
		for row := lo; row < hi; row++ {
			src := t.data[row*w : (row+1)*w]
			dst := out.data[row*w : (row+1)*w]
			for x := 0; x < w; x++ {
				dst[x] = src[w-1-x]
			}
		}
	})
	return out
}

// FlipV mirrors an (N, C, H, W) tensor vertically (top–bottom).
func FlipV(t *Tensor) *Tensor {
	n, c, h, w := dims4("FlipV input", t)
	out := New(n, c, h, w)
	forEach(n*c, func(lo, hi int) {
		for p := lo; p < hi; p++ {
			for y := 0; y < h; y++ {
				src := t.data[(p*h+y)*w : (p*h+y+1)*w]
				dst := out.data[(p*h+(h-1-y))*w : (p*h+(h-1-y)+1)*w]
				copy(dst, src)
			}
		}
	})
	return out
}

// Rot90 rotates each (H, W) plane of an (N, C, H, W) tensor by 90°×k
// counter-clockwise. Square planes are required for k odd.
func Rot90(t *Tensor, k int) *Tensor {
	n, c, h, w := dims4("Rot90 input", t)
	k = ((k % 4) + 4) % 4
	switch k {
	case 0:
		return t.Clone()
	case 2:
		return FlipH(FlipV(t))
	}
	if h != w {
		panic(fmt.Sprintf("tensor: Rot90 with k=%d needs square planes, got %dx%d", k, h, w))
	}
	out := New(n, c, h, w)
	forEach(n*c, func(lo, hi int) {
		for p := lo; p < hi; p++ {
			src := t.data[p*h*w : (p+1)*h*w]
			dst := out.data[p*h*w : (p+1)*h*w]
			for y := 0; y < h; y++ {
				for x := 0; x < w; x++ {
					if k == 1 { // counter-clockwise
						dst[(w-1-x)*w+y] = src[y*w+x]
					} else { // k == 3, clockwise
						dst[x*w+(h-1-y)] = src[y*w+x]
					}
				}
			}
		}
	})
	return out
}

// AddNoiseInPlace perturbs every element with N(0, std²) noise from rng —
// the sensor-noise augmentation for training robustness.
func AddNoiseInPlace(t *Tensor, rng *RNG, std float64) {
	for i := range t.data {
		t.data[i] += float32(rng.NormFloat64() * std)
	}
}

// ResizeBilinear rescales each (H, W) plane of an (N, C, H, W) tensor to
// (outH, outW) with bilinear interpolation (align-corners=false, the
// torchvision convention). It supports both down- and up-scaling and is
// used to train or evaluate at a different resolution than the corpus was
// synthesized at.
func ResizeBilinear(t *Tensor, outH, outW int) *Tensor {
	n, c, h, w := dims4("ResizeBilinear input", t)
	if outH <= 0 || outW <= 0 {
		panic(fmt.Sprintf("tensor: ResizeBilinear to %dx%d", outH, outW))
	}
	if outH == h && outW == w {
		return t.Clone()
	}
	out := New(n, c, outH, outW)
	scaleY := float64(h) / float64(outH)
	scaleX := float64(w) / float64(outW)
	forEach(n*c, func(lo, hi int) {
		for p := lo; p < hi; p++ {
			src := t.data[p*h*w : (p+1)*h*w]
			dst := out.data[p*outH*outW : (p+1)*outH*outW]
			for oy := 0; oy < outH; oy++ {
				sy := (float64(oy)+0.5)*scaleY - 0.5
				y0 := int(sy)
				if sy < 0 {
					y0 = 0
					sy = 0
				}
				y1 := y0 + 1
				if y1 >= h {
					y1 = h - 1
				}
				fy := float32(sy - float64(y0))
				for ox := 0; ox < outW; ox++ {
					sx := (float64(ox)+0.5)*scaleX - 0.5
					x0 := int(sx)
					if sx < 0 {
						x0 = 0
						sx = 0
					}
					x1 := x0 + 1
					if x1 >= w {
						x1 = w - 1
					}
					fx := float32(sx - float64(x0))
					top := src[y0*w+x0]*(1-fx) + src[y0*w+x1]*fx
					bot := src[y1*w+x0]*(1-fx) + src[y1*w+x1]*fx
					dst[oy*outW+ox] = top*(1-fy) + bot*fy
				}
			}
		}
	})
	return out
}
