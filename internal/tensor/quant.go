package tensor

import "math"

// Symmetric int8 quantization primitives shared by the quantized GEMM path
// and the plan compiler's PTQ pass (internal/infer).
//
// Activations use per-tensor symmetric scales with zero-point 0: a float v
// maps to clamp(round(v/scale)) in [-QActMax, QActMax]. Weights use
// per-output-channel symmetric scales bounded to ±QWeightMax.
const (
	// QActMax is the activation quantization ceiling (full signed 8-bit).
	QActMax = 127
	// QWeightMax bounds quantized weight magnitude to ±63 rather than ±127.
	// The AVX2 kernel multiplies u8 activations against s8 weights with
	// VPMADDUBSW, which saturates its int16 lanes: a pair sum reaches at
	// most 255·QWeightMax·2 = 32130 < 32767, so with this bound the
	// saturating instruction is exact and the scalar kernel (plain integer
	// arithmetic) matches it bit for bit.
	QWeightMax = 63
)

// MaxAbs returns the largest absolute value in xs (0 for an empty slice).
// NaNs are ignored; an infinity saturates the result.
func MaxAbs(xs []float32) float32 {
	m := float32(0)
	for _, v := range xs {
		if v < 0 {
			v = -v
		}
		if v > m {
			m = v
		}
	}
	return m
}

// ActScale converts an observed activation max-abs into the symmetric
// per-tensor scale: maxAbs/QActMax, or 1 when the observed range is
// degenerate (all-zero calibration values must not produce a zero divisor).
func ActScale(maxAbs float32) float32 {
	if !(maxAbs > 0) || math.IsInf(float64(maxAbs), 0) {
		return 1
	}
	return maxAbs / QActMax
}

// sanitizeScale guards the quantization helpers against adversarial scales
// (zero, negative, NaN, ±Inf, and subnormals whose reciprocal overflows):
// any non-usable scale degrades to 1, keeping the round trip well-defined
// instead of panicking or emitting NaN bytes.
func sanitizeScale(scale float32) float32 {
	if !(scale > 0) || math.IsInf(float64(scale), 0) || math.IsInf(float64(1/scale), 0) {
		return 1
	}
	return scale
}

// QuantizeInto quantizes src into dst: dst[i] = clamp(round(src[i]/scale))
// in [-QActMax, QActMax]. Lengths must match. NaN inputs quantize to 0.
func QuantizeInto(dst []int8, src []float32, scale float32) {
	if len(dst) != len(src) {
		panic("tensor: QuantizeInto length mismatch")
	}
	inv := 1 / sanitizeScale(scale)
	for i, v := range src {
		dst[i] = quantizeOne(v * inv)
	}
}

// DequantizeInto reconstructs dst[i] = scale·src[i]. Lengths must match.
func DequantizeInto(dst []float32, src []int8, scale float32) {
	if len(dst) != len(src) {
		panic("tensor: DequantizeInto length mismatch")
	}
	scale = sanitizeScale(scale)
	for i, q := range src {
		dst[i] = scale * float32(q)
	}
}

// quantizeOne rounds a pre-scaled value to the clamped int8 grid.
func quantizeOne(v float32) int8 {
	r := math.RoundToEven(float64(v))
	switch {
	case math.IsNaN(r):
		return 0
	case r > QActMax:
		return QActMax
	case r < -QActMax:
		return -QActMax
	}
	return int8(r)
}

// QuantizeWeightsPerChannel quantizes an oc×kdim row-major weight matrix to
// int8 with one symmetric scale per output channel (row): scale[o] =
// maxabs(row o)/QWeightMax, q = clamp(round(w/scale[o])). An all-zero row
// gets scale 1 so dequantization stays exact (0·1 = 0).
func QuantizeWeightsPerChannel(w []float32, oc, kdim int) (q []int8, scales []float32) {
	if len(w) != oc*kdim {
		panic("tensor: QuantizeWeightsPerChannel length mismatch")
	}
	q = make([]int8, len(w))
	scales = make([]float32, oc)
	for o := 0; o < oc; o++ {
		row := w[o*kdim : (o+1)*kdim]
		m := MaxAbs(row)
		s := float32(1)
		if m > 0 && !math.IsInf(float64(m), 0) {
			s = m / QWeightMax
		}
		scales[o] = s
		inv := 1 / s
		qrow := q[o*kdim : (o+1)*kdim]
		for i, v := range row {
			r := math.RoundToEven(float64(v * inv))
			switch {
			case math.IsNaN(r):
				r = 0
			case r > QWeightMax:
				r = QWeightMax
			case r < -QWeightMax:
				r = -QWeightMax
			}
			qrow[i] = int8(r)
		}
	}
	return q, scales
}
