package tensor

// Test hooks. The parity suite needs to pin which micro-kernel runs (the
// assembly kernel is verified against the scalar kernel, and both against
// the naive oracle) and to compare pooled against fresh-buffer execution.

// forceScalarKernel switches the GEMM to the portable 4×4 kernel and
// returns a restore func. Not safe to call while kernels are running.
func forceScalarKernel() (restore func()) {
	mr, nr, k, name := gemmMR, gemmNR, microKernel, gemmKernelName
	gemmMR, gemmNR, microKernel, gemmKernelName = 4, 4, kernelScalar4x4, "scalar-4x4"
	return func() { gemmMR, gemmNR, microKernel, gemmKernelName = mr, nr, k, name }
}

// disableScratchPool makes every scratch request allocate fresh (and every
// return drop), so pooled runs can be compared against unpooled ones.
func disableScratchPool() (restore func()) {
	prev := scratchPoolDisabled
	scratchPoolDisabled = true
	return func() { scratchPoolDisabled = prev }
}
