package tensor

import (
	"fmt"
	"math"
	"sync"

	"drainnas/internal/parallel"
)

// QuantizedConv is the int8 execution unit of quantized inference plans:
// the integer sibling of PackedConv. Construction quantizes the float
// weights per output channel (bounded to ±QWeightMax for the AVX2 kernel's
// saturation-free guarantee), precomputes the +128 activation-offset
// compensation, and folds the input/weight/output scales plus the bias into
// a per-channel requantize (or dequantize) epilogue fused with the optional
// ReLU. The weight panels pack lazily on first use and are kept for the
// value's lifetime, so a steady-state forward allocates nothing beyond
// pooled scratch.
//
// A QuantizedConv is immutable after construction and safe for concurrent
// use.
type QuantizedConv struct {
	qw   []int8    // oc×kdim quantized weights, |q| ≤ QWeightMax
	comp []int32   // per-oc u8-offset compensation: 128·Σ_k qw[o][k]
	mult []float32 // per-oc epilogue multiplier (see below)
	add  []float32 // per-oc epilogue addend (see below)

	oc, c, kh, kw int
	stride, pad   int
	relu          bool
	floatOut      bool

	once sync.Once
	qa   packedQA

	// Degenerate-spatial fast path (1×1 output whose receptive field covers
	// the whole input): the im2col matrix is mostly zero padding, so the
	// forward instead runs a pruned GEMV over just the valid taps. Built
	// lazily for the first qualifying (h, w); see buildDegenerate.
	degenOnce      sync.Once
	degenQA        packedQA
	degenComp      []int32
	degenH, degenW int
}

// NewQuantizedConv builds the int8 form of a convolution with float weight
// (OC, C, KH, KW), optional bias (nil or length OC), stride, padding and an
// optional fused ReLU. inScale is the symmetric scale of the s8 input
// activations. outScale > 0 selects int8 output — the epilogue requantizes
// to the given output scale — while outScale ≤ 0 selects float32 output
// (the dequantizing tail op of a quantized plan).
//
// The fused epilogue evaluates, per output channel o and int32 accumulator
// acc:
//
//	v = mult[o]·(acc − comp[o]) + add[o]
//
// with mult[o] = inScale·wScale[o]/outScale and add[o] = bias[o]/outScale
// for int8 output (v is then rounded and clamped, ReLU as a 0 lower clamp),
// or mult[o] = inScale·wScale[o] and add[o] = bias[o] for float output.
func NewQuantizedConv(weight *Tensor, bias []float32, stride, pad int, relu bool, inScale, outScale float32) *QuantizedConv {
	oc, c, kh, kw := dims4("NewQuantizedConv weight", weight)
	if bias != nil && len(bias) != oc {
		panic(fmt.Sprintf("tensor: NewQuantizedConv bias length %d, want %d", len(bias), oc))
	}
	if stride <= 0 || pad < 0 {
		panic(fmt.Sprintf("tensor: NewQuantizedConv stride=%d pad=%d", stride, pad))
	}
	inScale = sanitizeScale(inScale)
	kdim := c * kh * kw
	qw, wScales := QuantizeWeightsPerChannel(weight.Data(), oc, kdim)

	qc := &QuantizedConv{
		qw:   qw,
		comp: make([]int32, oc),
		mult: make([]float32, oc),
		add:  make([]float32, oc),
		oc:   oc, c: c, kh: kh, kw: kw,
		stride: stride, pad: pad,
		relu:     relu,
		floatOut: outScale <= 0,
	}
	for o := 0; o < oc; o++ {
		sum := int32(0)
		for _, q := range qw[o*kdim : (o+1)*kdim] {
			sum += int32(q)
		}
		qc.comp[o] = 128 * sum
		m := inScale * wScales[o]
		b := float32(0)
		if bias != nil {
			b = bias[o]
		}
		if qc.floatOut {
			qc.mult[o], qc.add[o] = m, b
		} else {
			qc.mult[o], qc.add[o] = m/outScale, b/outScale
		}
	}
	return qc
}

// InChannels returns the input channel count the convolution expects.
func (qc *QuantizedConv) InChannels() int { return qc.c }

// OutChannels returns the output channel count.
func (qc *QuantizedConv) OutChannels() int { return qc.oc }

// OutSize returns the output spatial size for an H×W input.
func (qc *QuantizedConv) OutSize(h, w int) (oh, ow int) {
	return ConvOut(h, qc.kh, qc.stride, qc.pad), ConvOut(w, qc.kw, qc.stride, qc.pad)
}

// KernelSize returns the filter's spatial extent (KH, KW).
func (qc *QuantizedConv) KernelSize() (kh, kw int) { return qc.kh, qc.kw }

// Stride returns the convolution stride.
func (qc *QuantizedConv) Stride() int { return qc.stride }

// Pad returns the spatial zero-padding applied to each border.
func (qc *QuantizedConv) Pad() int { return qc.pad }

// HasReLU reports whether a ReLU epilogue is fused into the convolution.
func (qc *QuantizedConv) HasReLU() bool { return qc.relu }

// FloatOutput reports whether the epilogue dequantizes to float32.
func (qc *QuantizedConv) FloatOutput() bool { return qc.floatOut }

// ForwardInto convolves the s8 input (n, C, h, w flat) into exactly one of
// outQ (int8 mode) or outF (float32 mode), both flat (n, OC, OH, OW)
// buffers the caller sized from OutSize. It allocates nothing beyond pooled
// scratch. The work grid matches the float driver: sample × output-row
// chunk, so a batch-1 forward still spreads over every core.
func (qc *QuantizedConv) ForwardInto(outQ []int8, outF []float32, in []int8, n, h, w int) {
	if (outQ == nil) == (outF == nil) {
		panic("tensor: QuantizedConv wants exactly one of outQ/outF")
	}
	if qc.floatOut != (outF != nil) {
		panic("tensor: QuantizedConv output buffer kind does not match its epilogue mode")
	}
	if len(in) != n*qc.c*h*w {
		panic(fmt.Sprintf("tensor: QuantizedConv input length %d, want %d", len(in), n*qc.c*h*w))
	}
	oh, ow := qc.OutSize(h, w)
	if oh <= 0 || ow <= 0 {
		panic(fmt.Sprintf("tensor: QuantizedConv produces empty output for input %dx%d", h, w))
	}
	want := n * qc.oc * oh * ow
	if (outQ != nil && len(outQ) != want) || (outF != nil && len(outF) != want) {
		panic(fmt.Sprintf("tensor: QuantizedConv output length mismatch, want %d", want))
	}
	qc.once.Do(func() { qc.qa = packQA(qc.qw, qc.oc, qc.c*qc.kh*qc.kw) })

	chunks := 1
	if workers := parallel.DefaultWorkers; n < workers {
		chunks = (workers + n - 1) / n
		if chunks > oh {
			chunks = oh
		}
	}
	job := qconvJob{
		qc: qc, outQ: outQ, outF: outF, in: in,
		n: n, h: h, w: w, oh: oh, ow: ow, chunks: chunks,
	}
	if parallel.DefaultWorkers == 1 || n*chunks == 1 {
		// Serial grid: direct method calls keep the steady-state inference
		// path allocation-free, as in convInto.
		for s := 0; s < n; s++ {
			for ci := 0; ci < chunks; ci++ {
				job.run(s, ci)
			}
		}
		return
	}
	pjob := job // escapes via the method value; the serial job stays on the stack
	parallel.ForTiles2D(n, chunks, 0, pjob.run)
}

// qconvJob carries one ForwardInto invocation's parameters so the per-chunk
// body can be a method (direct-callable on the serial path).
type qconvJob struct {
	qc      *QuantizedConv
	outQ    []int8
	outF    []float32
	in      []int8
	n, h, w int
	oh, ow  int
	chunks  int
}

// run executes grid cell (sample s, row-chunk ci): lower the chunk to s8
// columns, pack to u8 panels, run the micro-kernel over the row-tile ×
// panel grid, and merge each int32 tile through the fused requantize /
// dequantize epilogue.
func (j *qconvJob) run(s, ci int) {
	qc := j.qc
	c, h, w := qc.c, j.h, j.w
	oh, ow := j.oh, j.ow
	kdim := c * qc.kh * qc.kw
	cols := oh * ow
	pointwise := qc.kh == 1 && qc.kw == 1 && qc.pad == 0
	oyLo, oyHi := parallel.SplitRange(oh, j.chunks, ci)
	if oyLo == oyHi {
		return
	}
	colLo := oyLo * ow
	chunkCols := (oyHi - oyLo) * ow
	sample := j.in[s*c*h*w : (s+1)*c*h*w]
	base := s * qc.oc * cols

	// Degenerate spatial case: a single output position whose receptive
	// field covers the whole input (the deep tail of a PaperSpace backbone,
	// where 3×3 convs run on 1×1 or 2×2 maps). The im2col matrix would be a
	// kdim×1 column that is mostly zero padding; the pruned weight pack
	// multiplies just the valid taps against the sample itself, skipping the
	// lowering entirely and shrinking the GEMV kdim (9× for a 3×3 on 1×1).
	if !pointwise && oh == 1 && ow == 1 && qc.kh >= qc.pad+h && qc.kw >= qc.pad+w {
		qc.degenOnce.Do(func() { qc.buildDegenerate(h, w) })
		if qc.degenH == h && qc.degenW == w {
			pb := packQB(sample, 1, c*h*w, 1)
			j.tiles(qc.degenQA, qc.degenComp, pb, base, 1, 0)
			pb.release()
			return
		}
	}

	var bsrc, scratch []int8
	ldb := chunkCols
	switch {
	case pointwise && qc.stride == 1:
		bsrc = sample[colLo:]
		ldb = h * w
	case pointwise:
		scratch = scratchI8.get(c * chunkCols)
		qpointwiseColumns(sample, c, h, w, qc.stride, oyLo, oyHi, scratch)
		bsrc = scratch
	default:
		scratch = scratchI8.get(kdim * chunkCols)
		QIm2ColRows(sample, c, h, w, qc.kh, qc.kw, qc.stride, qc.pad, oyLo, oyHi, scratch)
		bsrc = scratch
	}
	pb := packQB(bsrc, ldb, kdim, chunkCols)
	if scratch != nil {
		scratchI8.put(scratch)
	}
	j.tiles(qc.qa, qc.comp, pb, base, cols, colLo)
	pb.release()
}

// tiles runs the micro-kernel over the row-tile × panel grid of one packed
// A/B pair and merges each int32 tile through the fused requantize /
// dequantize epilogue. comp is passed alongside qa because the degenerate
// path's pruned weight pack carries its own offset compensation.
func (j *qconvJob) tiles(qa packedQA, comp []int32, pb packedQB, base, cols, colLo int) {
	qc := j.qc
	// The tile accumulator comes from the scratch pool: qKernel is a func
	// variable, so a local array would escape on every call.
	cbuf := scratchI32.get(qMR * qNR)
	aslot := qa.kQuads * qMR * 4
	bslot := pb.kQuads * qNR * 4
	for rt := 0; rt < qa.rowTiles; rt++ {
		rows := qa.m - rt*qMR
		if rows > qMR {
			rows = qMR
		}
		for p := 0; p < pb.nPanels; p++ {
			pcols := pb.n - p*qNR
			if pcols > qNR {
				pcols = qNR
			}
			qKernel(qa.buf[rt*aslot:], pb.buf[p*bslot:], cbuf, qa.kQuads)
			for r := 0; r < rows; r++ {
				o := rt*qMR + r
				mult, addend, co := qc.mult[o], qc.add[o], comp[o]
				trow := cbuf[r*qNR : r*qNR+qNR]
				off := base + o*cols + colLo + p*qNR
				if qc.floatOut {
					dst := j.outF[off : off+pcols]
					for jj := 0; jj < pcols; jj++ {
						v := mult*float32(trow[jj]-co) + addend
						if qc.relu && v < 0 {
							v = 0
						}
						dst[jj] = v
					}
				} else {
					dst := j.outQ[off : off+pcols]
					lo := float64(-QActMax)
					if qc.relu {
						lo = 0
					}
					for jj := 0; jj < pcols; jj++ {
						v := math.RoundToEven(float64(mult*float32(trow[jj]-co) + addend))
						if v < lo {
							v = lo
						} else if v > QActMax {
							v = QActMax
						}
						dst[jj] = int8(v)
					}
				}
			}
		}
	}
	scratchI32.put(cbuf)
}

// buildDegenerate packs the pruned weight matrix for 1×1-output forwards on
// an h×w input fully covered by the receptive field: column (ch, sy, sx) of
// the pruned matrix is original tap (ch, sy+pad, sx+pad) — exactly the taps
// whose im2col entries are not structurally zero — with the +128 offset
// compensation recomputed over the kept taps. The pack binds to the first
// qualifying (h, w); other shapes fall back to the generic path.
func (qc *QuantizedConv) buildDegenerate(h, w int) {
	kdim := qc.c * qc.kh * qc.kw
	dk := qc.c * h * w
	dw := make([]int8, qc.oc*dk)
	comp := make([]int32, qc.oc)
	for o := 0; o < qc.oc; o++ {
		row := qc.qw[o*kdim : (o+1)*kdim]
		drow := dw[o*dk : (o+1)*dk]
		i, sum := 0, int32(0)
		for ch := 0; ch < qc.c; ch++ {
			for sy := 0; sy < h; sy++ {
				for sx := 0; sx < w; sx++ {
					q := row[(ch*qc.kh+sy+qc.pad)*qc.kw+sx+qc.pad]
					drow[i] = q
					i++
					sum += int32(q)
				}
			}
		}
		comp[o] = 128 * sum
	}
	qc.degenQA = packQA(dw, qc.oc, dk)
	qc.degenComp = comp
	qc.degenH, qc.degenW = h, w
}

// QIm2ColRows lowers output rows [oyLo, oyHi) of one s8 (C,H,W) image into
// the column window dst, the int8 twin of Im2ColRows. Out-of-bounds taps
// contribute 0 — exact, since s8 activations are zero-point-0.
func QIm2ColRows(src []int8, c, h, w, kh, kw, stride, pad, oyLo, oyHi int, dst []int8) {
	oh := ConvOut(h, kh, stride, pad)
	ow := ConvOut(w, kw, stride, pad)
	if oyLo < 0 || oyHi > oh || oyLo > oyHi {
		panic(fmt.Sprintf("tensor: QIm2ColRows row range [%d,%d) outside [0,%d)", oyLo, oyHi, oh))
	}
	cols := (oyHi - oyLo) * ow
	if len(dst) != c*kh*kw*cols {
		panic(fmt.Sprintf("tensor: QIm2ColRows dst length %d, want %d", len(dst), c*kh*kw*cols))
	}
	// The ox range whose tap sx = ox·stride − pad + kx stays in [0, w)
	// depends only on kx; hoisting it (and its divisions) out of the channel
	// loop matters because deep layers run this c·kh·kw times for a handful
	// of pixels each. The same smallness argument replaces clear/copy calls
	// with inline loops below: rows here are 2–32 bytes, where the fixed cost
	// of a memclr/memmove call dominates the move itself.
	var oxLos, oxHis [maxKW]int
	if kw > maxKW {
		panic(fmt.Sprintf("tensor: QIm2ColRows kernel width %d exceeds %d", kw, maxKW))
	}
	for kx := 0; kx < kw; kx++ {
		oxLo := 0
		if pad > kx {
			oxLo = (pad - kx + stride - 1) / stride
		}
		oxHi := 0
		// num < 0 means even ox = 0 taps past the right edge; the guard also
		// keeps the division non-negative (Go's / truncates toward zero,
		// which is not the floor this bound needs for negative numerators).
		if num := w - 1 - kx + pad; num >= 0 {
			oxHi = num/stride + 1
			if oxHi > ow {
				oxHi = ow
			}
		}
		if oxHi < oxLo {
			oxHi = oxLo
		}
		oxLos[kx], oxHis[kx] = oxLo, oxHi
	}
	row := 0
	for ch := 0; ch < c; ch++ {
		plane := src[ch*h*w : (ch+1)*h*w]
		for ky := 0; ky < kh; ky++ {
			for kx := 0; kx < kw; kx++ {
				oxLo, oxHi := oxLos[kx], oxHis[kx]
				drow := dst[row*cols : (row+1)*cols]
				row++
				i := 0
				for oy := oyLo; oy < oyHi; oy++ {
					sy := oy*stride - pad + ky
					if sy < 0 || sy >= h {
						for t := 0; t < ow; t++ {
							drow[i] = 0
							i++
						}
						continue
					}
					srow := plane[sy*w : (sy+1)*w]
					for t := 0; t < oxLo; t++ {
						drow[i] = 0
						i++
					}
					sx := oxLo*stride - pad + kx
					if stride == 1 {
						for _, v := range srow[sx : sx+oxHi-oxLo] {
							drow[i] = v
							i++
						}
					} else {
						for ox := oxLo; ox < oxHi; ox++ {
							drow[i] = srow[sx]
							i++
							sx += stride
						}
					}
					for t := oxHi; t < ow; t++ {
						drow[i] = 0
						i++
					}
				}
			}
		}
	}
}

// maxKW bounds the kernel width QIm2ColRows accepts; PaperSpace tops out at
// 7 and the bound keeps the hoisted per-kx range tables off the heap.
const maxKW = 16

// qpointwiseColumns builds the column window for output rows [oyLo, oyHi)
// of a strided 1×1 s8 convolution, the int8 twin of pointwiseColumns.
func qpointwiseColumns(src []int8, c, h, w, stride, oyLo, oyHi int, dst []int8) {
	ow := ConvOut(w, 1, stride, 0)
	chunkCols := (oyHi - oyLo) * ow
	for ch := 0; ch < c; ch++ {
		plane := src[ch*h*w : (ch+1)*h*w]
		drow := dst[ch*chunkCols : (ch+1)*chunkCols]
		i := 0
		for y := oyLo; y < oyHi; y++ {
			row := plane[y*stride*w:]
			for x := 0; x < ow; x++ {
				drow[i] = row[x*stride]
				i++
			}
		}
	}
}
