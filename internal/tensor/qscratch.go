package tensor

import (
	"math/bits"
	"sync"

	"drainnas/internal/metrics"
)

// typedScratch is the generic sibling of the float32 scratch pool: the int8
// inference path needs transient buffers of three more element types (int8
// im2col lowerings, uint8 packed activation panels, int32 accumulator
// tiles), and they recycle exactly the way the float buffers do — bucketed
// by power-of-two capacity class, boxed behind pointers so a get/put round
// trip allocates nothing. The float pool keeps its original concrete form;
// sharing an implementation with it would churn the hottest allocation path
// in the package for no behavioral gain.
type typedScratch[T any] struct {
	pools [28]sync.Pool
	boxes sync.Pool
}

func newTypedScratch[T any]() *typedScratch[T] {
	return &typedScratch[T]{boxes: sync.Pool{New: func() any { return new([]T) }}}
}

// get returns a length-n buffer with unspecified contents, like getScratch.
func (p *typedScratch[T]) get(n int) []T {
	if n <= 0 {
		return nil
	}
	c := scratchClass(n)
	if !scratchPoolDisabled {
		if v := p.pools[c].Get(); v != nil {
			box := v.(*[]T)
			buf := *box
			*box = nil // don't pin the buffer from the box pool
			p.boxes.Put(box)
			metrics.Kernel.ScratchHit()
			return buf[:n]
		}
	}
	metrics.Kernel.ScratchMiss()
	return make([]T, 1<<c)[:n]
}

// put files a buffer back under the largest class its capacity can always
// satisfy.
func (p *typedScratch[T]) put(buf []T) {
	c := cap(buf)
	if c < 1<<scratchMinClass || scratchPoolDisabled {
		return
	}
	class := bits.Len(uint(c)) - 1
	box := p.boxes.Get().(*[]T)
	*box = buf[:c:c]
	p.pools[class].Put(box)
}

var (
	scratchI8  = newTypedScratch[int8]()
	scratchU8  = newTypedScratch[uint8]()
	scratchI32 = newTypedScratch[int32]()
)
