// Package tensor implements dense float32 tensors with the operations a CNN
// training loop needs: elementwise arithmetic, parallel matrix multiplication,
// im2col-based 2-D convolution, pooling, padding, and reductions.
//
// Tensors are row-major and contiguous. The package favors explicit shapes
// and loud failures: shape mismatches panic, because inside a training loop
// they are always programming errors, never recoverable conditions.
package tensor

import (
	"fmt"
	"math"

	"drainnas/internal/parallel"
)

// Tensor is a dense, contiguous, row-major float32 array with a shape.
type Tensor struct {
	shape []int
	data  []float32
}

// New allocates a zero-filled tensor with the given shape. A zero-dimensional
// shape produces a scalar tensor with one element.
func New(shape ...int) *Tensor {
	n := checkedNumel(shape)
	return &Tensor{shape: cloneShape(shape), data: make([]float32, n)}
}

// FromSlice wraps data in a tensor of the given shape. The slice is used
// directly (not copied); its length must equal the shape's element count.
func FromSlice(data []float32, shape ...int) *Tensor {
	n := checkedNumel(shape)
	if len(data) != n {
		panic(fmt.Sprintf("tensor: FromSlice data length %d does not match shape %v (numel %d)", len(data), shape, n))
	}
	return &Tensor{shape: cloneShape(shape), data: data}
}

// Full returns a tensor with every element set to v.
func Full(v float32, shape ...int) *Tensor {
	t := New(shape...)
	for i := range t.data {
		t.data[i] = v
	}
	return t
}

// Ones returns a tensor of ones.
func Ones(shape ...int) *Tensor { return Full(1, shape...) }

// Shape returns the tensor's dimensions. The returned slice must not be
// mutated by the caller.
func (t *Tensor) Shape() []int { return t.shape }

// Dim returns the size of dimension i.
func (t *Tensor) Dim(i int) int { return t.shape[i] }

// NDim returns the number of dimensions.
func (t *Tensor) NDim() int { return len(t.shape) }

// Numel returns the total number of elements.
func (t *Tensor) Numel() int { return len(t.data) }

// Data returns the backing slice. Mutations are visible to the tensor.
func (t *Tensor) Data() []float32 { return t.data }

// Clone returns a deep copy.
func (t *Tensor) Clone() *Tensor {
	c := &Tensor{shape: cloneShape(t.shape), data: make([]float32, len(t.data))}
	copy(c.data, t.data)
	return c
}

// Reshape returns a view with a new shape sharing the same backing data.
// The element count must be preserved. One dimension may be -1, in which
// case it is inferred.
func (t *Tensor) Reshape(shape ...int) *Tensor {
	shape = cloneShape(shape)
	infer := -1
	known := 1
	for i, d := range shape {
		if d == -1 {
			if infer >= 0 {
				panic("tensor: Reshape with more than one -1 dimension")
			}
			infer = i
			continue
		}
		if d <= 0 {
			panic(fmt.Sprintf("tensor: Reshape invalid dimension %d in %v", d, shape))
		}
		known *= d
	}
	if infer >= 0 {
		if known == 0 || len(t.data)%known != 0 {
			panic(fmt.Sprintf("tensor: cannot infer dimension reshaping %v to %v", t.shape, shape))
		}
		shape[infer] = len(t.data) / known
		known *= shape[infer]
	}
	if known != len(t.data) {
		panic(fmt.Sprintf("tensor: Reshape %v (numel %d) to %v (numel %d)", t.shape, len(t.data), shape, known))
	}
	return &Tensor{shape: shape, data: t.data}
}

// At returns the element at the given multi-dimensional index.
func (t *Tensor) At(idx ...int) float32 { return t.data[t.offset(idx)] }

// Set writes v at the given multi-dimensional index.
func (t *Tensor) Set(v float32, idx ...int) { t.data[t.offset(idx)] = v }

func (t *Tensor) offset(idx []int) int {
	if len(idx) != len(t.shape) {
		panic(fmt.Sprintf("tensor: index %v does not match shape %v", idx, t.shape))
	}
	off := 0
	for i, x := range idx {
		if x < 0 || x >= t.shape[i] {
			panic(fmt.Sprintf("tensor: index %v out of range for shape %v", idx, t.shape))
		}
		off = off*t.shape[i] + x
	}
	return off
}

// SameShape reports whether t and o have identical shapes.
func (t *Tensor) SameShape(o *Tensor) bool {
	if len(t.shape) != len(o.shape) {
		return false
	}
	for i := range t.shape {
		if t.shape[i] != o.shape[i] {
			return false
		}
	}
	return true
}

// String renders a compact description (shape plus a few leading values),
// suitable for debugging, not for data export.
func (t *Tensor) String() string {
	n := len(t.data)
	if n > 8 {
		n = 8
	}
	return fmt.Sprintf("Tensor%v%v…", t.shape, t.data[:n])
}

// Zero resets all elements to 0 in place.
func (t *Tensor) Zero() {
	for i := range t.data {
		t.data[i] = 0
	}
}

// Fill sets all elements to v in place.
func (t *Tensor) Fill(v float32) {
	for i := range t.data {
		t.data[i] = v
	}
}

// CopyFrom copies o's data into t. Shapes must match exactly.
func (t *Tensor) CopyFrom(o *Tensor) {
	if !t.SameShape(o) {
		panic(fmt.Sprintf("tensor: CopyFrom shape mismatch %v vs %v", t.shape, o.shape))
	}
	copy(t.data, o.data)
}

// HasNaN reports whether any element is NaN or infinite, a cheap sanity
// check after a training step.
func (t *Tensor) HasNaN() bool {
	for _, v := range t.data {
		f := float64(v)
		if math.IsNaN(f) || math.IsInf(f, 0) {
			return true
		}
	}
	return false
}

func cloneShape(shape []int) []int {
	s := make([]int, len(shape))
	copy(s, shape)
	return s
}

func checkedNumel(shape []int) int {
	n := 1
	for _, d := range shape {
		if d <= 0 {
			panic(fmt.Sprintf("tensor: invalid shape %v", shape))
		}
		if n > (1<<31)/d {
			panic(fmt.Sprintf("tensor: shape %v overflows element count", shape))
		}
		n *= d
	}
	return n
}

// parallelThreshold is the element count below which elementwise ops run
// serially; goroutine fan-out costs more than it saves for tiny tensors.
const parallelThreshold = 1 << 14

func forEach(n int, body func(lo, hi int)) {
	if n < parallelThreshold {
		body(0, n)
		return
	}
	parallel.ForChunked(n, 0, body)
}

// serialRange reports whether an n-element elementwise pass should run as a
// plain loop: below the parallel threshold, or with parallelism pinned to 1.
// Callers use it to bypass forEach entirely — constructing the closure that
// forEach takes heap-allocates, which the zero-alloc inference path avoids.
func serialRange(n int) bool {
	return n < parallelThreshold || parallel.DefaultWorkers == 1
}
