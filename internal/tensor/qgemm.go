package tensor

import "encoding/binary"

// Packed int8 GEMM: the integer sibling of the float path in gemm.go,
// shaped around the AVX2 VPMADDUBSW/VPMADDWD reduction.
//
// The product is C = W·B with W the quantized s8 weight matrix (one row per
// output channel, |w| ≤ QWeightMax) and B the quantized activation columns.
// The k dimension is processed four taps at a time ("k-quads"): VPMADDUBSW
// multiplies u8 activations against s8 weights and sums adjacent pairs into
// int16 lanes, VPMADDWD(ones) folds the int16 pairs into int32 lanes, and
// VPADDD accumulates — one int32 per output column per quad, three
// instructions for sixteen multiply-adds.
//
// Activations are stored s8 in the arena (zero-point 0) and offset to u8
// (+128, a byte XOR 0x80) only inside the packed B panels, because
// VPMADDUBSW wants its first operand unsigned. The offset contributes
// 128·Σ_k w[o][k] to every output, a per-output-channel constant the
// epilogue subtracts exactly (QuantizedConv keeps it as comp[o]). Zero
// activations and zero-padded taps therefore contribute nothing, the same
// as in float.
//
// Unlike the float path there is no k blocking: the int32 accumulator tile
// lives in registers across the whole k loop (|acc| ≤ k·2·32130 keeps far
// inside int32 for any shape this package produces), and the per-quad
// operand reads — 64 B of packed B, 16 B of packed A — stream sequentially.
const (
	// qMR×qNR is the micro-tile: 4 output channels × 16 columns, eight YMM
	// int32 accumulators in the AVX2 kernel.
	qMR = 4
	qNR = 16
)

// qKernel computes the qMR×qNR int32 tile cbuf = A_panel·B_panel over kq
// k-quads. a is one packed weight row-tile (s8), b one packed activation
// column panel (u8, +128 offset). Overwrites cbuf (no accumulate flavor:
// the k loop is not blocked). Swapped to the AVX2 kernel at init on capable
// hardware.
var (
	qKernel     func(a []int8, b []uint8, cbuf []int32, kq int) = qkernelScalar4x16
	qKernelName                                                 = "scalar-4x16"
)

// QGemmKernelName identifies the int8 micro-kernel selected for this
// process ("avx2-4x16" or "scalar-4x16"), for stats endpoints and benchmark
// records.
func QGemmKernelName() string { return qKernelName }

// qkernelScalar4x16 is the portable int8 micro-kernel and the reference the
// assembly kernel is tested against. Plain integer arithmetic: with weights
// bounded to ±QWeightMax the saturating VPMADDUBSW path is exact, so both
// kernels produce identical int32 tiles.
func qkernelScalar4x16(a []int8, b []uint8, cbuf []int32, kq int) {
	cbuf = cbuf[:qMR*qNR]
	for i := range cbuf {
		cbuf[i] = 0
	}
	for q := 0; q < kq; q++ {
		aq := a[q*qMR*4 : q*qMR*4+qMR*4]
		bq := b[q*qNR*4 : q*qNR*4+qNR*4]
		for r := 0; r < qMR; r++ {
			w0 := int32(aq[r*4])
			w1 := int32(aq[r*4+1])
			w2 := int32(aq[r*4+2])
			w3 := int32(aq[r*4+3])
			crow := cbuf[r*qNR : r*qNR+qNR]
			for j := 0; j < qNR; j++ {
				crow[j] += int32(bq[j*4])*w0 + int32(bq[j*4+1])*w1 +
					int32(bq[j*4+2])*w2 + int32(bq[j*4+3])*w3
			}
		}
	}
}

// packedQA is the s8 weight matrix packed into row-tile panels: slot rt
// holds rows [rt·qMR, rt·qMR+qMR), laid out k-quad-major — quad q of row r
// at offset (q·qMR + r)·4 within the slot — so the kernel broadcasts one
// 4-byte weight dword per row per quad. Padded rows and padded k taps are
// zero-filled: a zero weight nullifies whatever byte sits in the matching B
// slot, which is what makes the k padding correctness-free.
type packedQA struct {
	buf      []int8
	m, k     int
	rowTiles int
	kQuads   int
}

// packQA packs the m×k row-major s8 matrix w. The buffer is plainly
// allocated, not pooled: weight packs are built once per conv lifetime
// (QuantizedConv caches them behind a sync.Once), never released into a
// pool.
func packQA(w []int8, m, k int) packedQA {
	rowTiles := (m + qMR - 1) / qMR
	kQuads := (k + 3) / 4
	slot := kQuads * qMR * 4
	pa := packedQA{
		buf:      make([]int8, rowTiles*slot),
		m:        m,
		k:        k,
		rowTiles: rowTiles,
		kQuads:   kQuads,
	}
	for rt := 0; rt < rowTiles; rt++ {
		rows := m - rt*qMR
		if rows > qMR {
			rows = qMR
		}
		dst := pa.buf[rt*slot : (rt+1)*slot]
		for r := 0; r < rows; r++ {
			src := w[(rt*qMR+r)*k : (rt*qMR+r)*k+k]
			for kk, v := range src {
				dst[(kk/4)*qMR*4+r*4+kk%4] = v
			}
		}
	}
	return pa
}

// packedQB is the activation column matrix packed into qNR-column panels,
// k-quad-major and offset to u8: quad q of column j occupies bytes
// (q·qNR + j)·4 … +3 within the panel slot, so one 32-byte load covers
// eight columns' quads. Padded columns and padded k taps hold 0x80 (the u8
// image of activation 0); the matching weight taps are zero, so the bytes
// are arithmetic don't-cares kept deterministic.
type packedQB struct {
	buf     []uint8
	k, n    int
	nPanels int
	kQuads  int
}

// packQB packs the k×n window of the s8 matrix b (leading dimension
// ldb ≥ n; ldb > n selects a column window, how stride-1 pointwise convs
// reuse the image in place). The buffer comes from the u8 scratch pool;
// release with release().
//
// Packing is the per-forward cost of the int8 path (weights pack once,
// activations on every call), so the loop works a whole k-quad at a time:
// the four taps of column j land as one dword store, with the +128 offset
// folded in as a single 32-bit XOR, instead of four stride-4 byte stores.
func packQB(b []int8, ldb, k, n int) packedQB {
	nPanels := (n + qNR - 1) / qNR
	kQuads := (k + 3) / 4
	slot := kQuads * qNR * 4
	pb := packedQB{
		buf:     scratchU8.get(nPanels * slot),
		k:       k,
		n:       n,
		nPanels: nPanels,
		kQuads:  kQuads,
	}
	for p := 0; p < nPanels; p++ {
		j0 := p * qNR
		cols := n - j0
		if cols > qNR {
			cols = qNR
		}
		dst := pb.buf[p*slot : (p+1)*slot]
		for q := 0; q < kQuads; q++ {
			kk := q * 4
			qdst := dst[q*qNR*4 : (q+1)*qNR*4]
			if kk+4 <= k {
				r0 := b[kk*ldb+j0 : kk*ldb+j0+cols]
				r1 := b[(kk+1)*ldb+j0 : (kk+1)*ldb+j0+cols]
				r2 := b[(kk+2)*ldb+j0 : (kk+2)*ldb+j0+cols]
				r3 := b[(kk+3)*ldb+j0 : (kk+3)*ldb+j0+cols]
				for j := 0; j < cols; j++ {
					u := uint32(uint8(r0[j])) | uint32(uint8(r1[j]))<<8 |
						uint32(uint8(r2[j]))<<16 | uint32(uint8(r3[j]))<<24
					binary.LittleEndian.PutUint32(qdst[j*4:], u^0x80808080)
				}
			} else {
				// k tail: the quad straddles the end of k; padded taps keep
				// the u8 image of activation 0.
				for j := 0; j < cols; j++ {
					u := uint32(0x80808080)
					for t := 0; t < k-kk; t++ {
						shift := uint(8 * t)
						u = u&^(0xff<<shift) | uint32(uint8(b[(kk+t)*ldb+j0+j])^0x80)<<shift
					}
					binary.LittleEndian.PutUint32(qdst[j*4:], u)
				}
			}
			for j := cols; j < qNR; j++ {
				binary.LittleEndian.PutUint32(qdst[j*4:], 0x80808080)
			}
		}
	}
	return pb
}

func (pb packedQB) release() { scratchU8.put(pb.buf) }
