package tensor

import (
	"fmt"

	"drainnas/internal/parallel"
)

// MatMul computes the matrix product of a (m×k) and b (k×n), parallelized
// over rows of the output. The inner loops are ordered i-k-j so the innermost
// loop streams both b and out rows sequentially, which is the
// cache-friendliest layout for row-major data.
func MatMul(a, b *Tensor) *Tensor {
	m, k, n := matmulDims(a, b)
	out := New(m, n)
	matmulInto(out, a, b, m, k, n, false)
	return out
}

// MatMulAcc computes out += a·b, reusing out's storage (shapes must agree).
func MatMulAcc(out, a, b *Tensor) {
	m, k, n := matmulDims(a, b)
	if out.NDim() != 2 || out.shape[0] != m || out.shape[1] != n {
		panic(fmt.Sprintf("tensor: MatMulAcc out shape %v, want [%d %d]", out.shape, m, n))
	}
	matmulInto(out, a, b, m, k, n, true)
}

func matmulDims(a, b *Tensor) (m, k, n int) {
	if a.NDim() != 2 || b.NDim() != 2 {
		panic(fmt.Sprintf("tensor: MatMul wants 2-D operands, got %v and %v", a.shape, b.shape))
	}
	m, k = a.shape[0], a.shape[1]
	if b.shape[0] != k {
		panic(fmt.Sprintf("tensor: MatMul inner dimension mismatch %v x %v", a.shape, b.shape))
	}
	return m, k, b.shape[1]
}

// matmulInto writes (or accumulates into) out = a·b. Parallelism is over
// output rows: each worker owns a disjoint row range, so no synchronization
// is needed on out.
func matmulInto(out, a, b *Tensor, m, k, n int, acc bool) {
	ad, bd, od := a.data, b.data, out.data
	workers := 0
	// For small matrices the goroutine fan-out dominates; stay serial.
	if m*k*n < 1<<15 {
		workers = 1
	}
	body := func(lo, hi int) {
		for i := lo; i < hi; i++ {
			orow := od[i*n : (i+1)*n]
			if !acc {
				for j := range orow {
					orow[j] = 0
				}
			}
			arow := ad[i*k : (i+1)*k]
			for kk := 0; kk < k; kk++ {
				av := arow[kk]
				if av == 0 {
					continue
				}
				brow := bd[kk*n : (kk+1)*n]
				for j, bv := range brow {
					orow[j] += av * bv
				}
			}
		}
	}
	if workers == 1 {
		body(0, m)
		return
	}
	parallel.ForChunked(m, 0, body)
}

// Transpose2D returns the transpose of a 2-D tensor.
func Transpose2D(a *Tensor) *Tensor {
	if a.NDim() != 2 {
		panic(fmt.Sprintf("tensor: Transpose2D wants a 2-D tensor, got %v", a.shape))
	}
	m, n := a.shape[0], a.shape[1]
	out := New(n, m)
	const block = 32 // blocked transpose for cache locality
	forEach(m, func(lo, hi int) {
		for i0 := lo; i0 < hi; i0 += block {
			iMax := i0 + block
			if iMax > hi {
				iMax = hi
			}
			for j0 := 0; j0 < n; j0 += block {
				jMax := j0 + block
				if jMax > n {
					jMax = n
				}
				for i := i0; i < iMax; i++ {
					for j := j0; j < jMax; j++ {
						out.data[j*m+i] = a.data[i*n+j]
					}
				}
			}
		}
	})
	return out
}

// MatVec computes a (m×k) times v (k) → (m).
func MatVec(a, v *Tensor) *Tensor {
	if a.NDim() != 2 || v.NDim() != 1 || a.shape[1] != v.shape[0] {
		panic(fmt.Sprintf("tensor: MatVec shape mismatch %v x %v", a.shape, v.shape))
	}
	m, k := a.shape[0], a.shape[1]
	out := New(m)
	forEach(m, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			row := a.data[i*k : (i+1)*k]
			s := float32(0)
			for j, av := range row {
				s += av * v.data[j]
			}
			out.data[i] = s
		}
	})
	return out
}
