package tensor

import (
	"fmt"

	"drainnas/internal/metrics"
)

// MatMul computes the matrix product of a (m×k) and b (k×n), parallelized
// over rows of the output. The inner loops are ordered i-k-j so the innermost
// loop streams both b and out rows sequentially, which is the
// cache-friendliest layout for row-major data.
func MatMul(a, b *Tensor) *Tensor {
	m, k, n := matmulDims(a, b)
	out := New(m, n)
	matmulInto(out, a, b, m, k, n, false)
	return out
}

// MatMulAcc computes out += a·b, reusing out's storage (shapes must agree).
func MatMulAcc(out, a, b *Tensor) {
	m, k, n := matmulDims(a, b)
	if out.NDim() != 2 || out.shape[0] != m || out.shape[1] != n {
		panic(fmt.Sprintf("tensor: MatMulAcc out shape %v, want [%d %d]", out.shape, m, n))
	}
	matmulInto(out, a, b, m, k, n, true)
}

func matmulDims(a, b *Tensor) (m, k, n int) {
	if a.NDim() != 2 || b.NDim() != 2 {
		panic(fmt.Sprintf("tensor: MatMul wants 2-D operands, got %v and %v", a.shape, b.shape))
	}
	m, k = a.shape[0], a.shape[1]
	if b.shape[0] != k {
		panic(fmt.Sprintf("tensor: MatMul inner dimension mismatch %v x %v", a.shape, b.shape))
	}
	return m, k, b.shape[1]
}

// matmulInto writes (or accumulates into) out = a·b, dispatching on size:
// matrices below gemmSerialCutoff run the naive streaming kernel serially
// (packing and goroutine fan-out both cost more than they save there);
// everything larger goes to the cache-blocked, register-tiled kernel in
// gemm.go, parallelized over output tiles.
func matmulInto(out, a, b *Tensor, m, k, n int, acc bool) {
	if m*k*n < gemmSerialCutoff {
		metrics.Kernel.NaiveCall()
		matmulNaive(out.data, n, a.data, k, b.data, n, m, k, n, acc)
		return
	}
	metrics.Kernel.GemmCall()
	gemmParallel(out.data, a.data, b.data, m, k, n, acc)
}

// matmulNaive is the dense i-k-j streaming kernel: the innermost loop walks
// one B row and one C row sequentially, the cache-friendliest layout for
// row-major data without packing. It is retained for two jobs — the serial
// path for tiny matrices (below gemmSerialCutoff, where the tiled kernel's
// packing cannot amortize) and the oracle the tiled kernel's parity tests
// compare against. It deliberately has no zero-skip branch: on dense
// activations the branch never fires and only costs the predictor.
//
// Operands are strided: c is m×n with leading dimension ldc, a is m×k with
// lda, b is k×n with ldb, which lets convolution row-chunks address column
// windows of wider matrices in place.
func matmulNaive(c []float32, ldc int, a []float32, lda int, b []float32, ldb int, m, k, n int, acc bool) {
	for i := 0; i < m; i++ {
		crow := c[i*ldc : i*ldc+n]
		if !acc {
			for j := range crow {
				crow[j] = 0
			}
		}
		arow := a[i*lda : i*lda+k]
		for kk := 0; kk < k; kk++ {
			av := arow[kk]
			brow := b[kk*ldb : kk*ldb+n]
			for j, bv := range brow {
				crow[j] += av * bv
			}
		}
	}
}

// Transpose2D returns the transpose of a 2-D tensor.
func Transpose2D(a *Tensor) *Tensor {
	if a.NDim() != 2 {
		panic(fmt.Sprintf("tensor: Transpose2D wants a 2-D tensor, got %v", a.shape))
	}
	m, n := a.shape[0], a.shape[1]
	out := New(n, m)
	const block = 32 // blocked transpose for cache locality
	forEach(m, func(lo, hi int) {
		for i0 := lo; i0 < hi; i0 += block {
			iMax := i0 + block
			if iMax > hi {
				iMax = hi
			}
			for j0 := 0; j0 < n; j0 += block {
				jMax := j0 + block
				if jMax > n {
					jMax = n
				}
				for i := i0; i < iMax; i++ {
					for j := j0; j < jMax; j++ {
						out.data[j*m+i] = a.data[i*n+j]
					}
				}
			}
		}
	})
	return out
}

// MatVec computes a (m×k) times v (k) → (m).
func MatVec(a, v *Tensor) *Tensor {
	if a.NDim() != 2 || v.NDim() != 1 || a.shape[1] != v.shape[0] {
		panic(fmt.Sprintf("tensor: MatVec shape mismatch %v x %v", a.shape, v.shape))
	}
	m, k := a.shape[0], a.shape[1]
	out := New(m)
	forEach(m, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			row := a.data[i*k : (i+1)*k]
			s := float32(0)
			for j, av := range row {
				s += av * v.data[j]
			}
			out.data[i] = s
		}
	})
	return out
}
