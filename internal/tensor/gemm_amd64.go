//go:build amd64

package tensor

// AVX2+FMA micro-kernel selection. The assembly kernel (gemm_amd64.s)
// computes a 6×16 float32 tile — 12 YMM accumulators, two YMM loads of the
// packed B row and six broadcast loads of the packed A column per k step —
// which is the classic occupancy-optimal shape for the 16-register AVX2
// file. Feature detection is done directly with CPUID/XGETBV so the package
// stays dependency-free; the OS must have enabled XMM+YMM state saving or
// we stay on the scalar kernel.

// gemmKernel6x16 computes cbuf (6×16, contiguous) = or += the product of a
// packed A panel block (k-major, 6 wide) and a packed B panel block
// (k-major, 16 wide) over kc steps. acc != 0 resumes from cbuf's contents.
//
//go:noescape
func gemmKernel6x16(a, b, cbuf *float32, kc, acc int)

// cpuidex executes CPUID with the given leaf and subleaf.
func cpuidex(leaf, sub uint32) (eax, ebx, ecx, edx uint32)

// xgetbv0 reads extended control register 0 (OS-enabled SIMD state).
func xgetbv0() (eax, edx uint32)

func init() {
	if !cpuHasAVX2FMA() {
		return
	}
	gemmMR, gemmNR = 6, 16
	microKernel = kernelAVX2
	gemmKernelName = "avx2-6x16"
}

func cpuHasAVX2FMA() bool {
	maxLeaf, _, _, _ := cpuidex(0, 0)
	if maxLeaf < 7 {
		return false
	}
	const (
		fmaBit     = 1 << 12
		osxsaveBit = 1 << 27
		avxBit     = 1 << 28
	)
	_, _, ecx1, _ := cpuidex(1, 0)
	if ecx1&fmaBit == 0 || ecx1&osxsaveBit == 0 || ecx1&avxBit == 0 {
		return false
	}
	// XCR0 bits 1 and 2: the OS saves XMM and YMM state on context switch.
	xcr0, _ := xgetbv0()
	if xcr0&0x6 != 0x6 {
		return false
	}
	const avx2Bit = 1 << 5
	_, ebx7, _, _ := cpuidex(7, 0)
	return ebx7&avx2Bit != 0
}

func kernelAVX2(a, b, cbuf []float32, kc int, acc bool) {
	ai := 0
	if acc {
		ai = 1
	}
	gemmKernel6x16(&a[0], &b[0], &cbuf[0], kc, ai)
}
