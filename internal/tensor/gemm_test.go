package tensor

import (
	"math"
	"testing"

	"drainnas/internal/parallel"
)

// naiveOracle computes the reference product with the streaming kernel the
// tiled path is specified against.
func naiveOracle(a, b *Tensor, m, k, n int, acc bool, into *Tensor) *Tensor {
	out := New(m, n)
	if into != nil {
		out.CopyFrom(into)
	}
	matmulNaive(out.data, n, a.data, k, b.data, n, m, k, n, acc)
	return out
}

// maxKernelDiff returns the largest |got-want| scaled by 1/(1+|want|), i.e.
// a blended absolute/relative error.
func maxKernelDiff(got, want *Tensor) float64 {
	worst := 0.0
	for i, w := range want.data {
		d := math.Abs(float64(got.data[i]-w)) / (1 + math.Abs(float64(w)))
		if d > worst {
			worst = d
		}
	}
	return worst
}

// parityTol is the allowed blended error against the naive oracle. The
// scalar kernel performs the identical multiply-then-add sequence in the
// identical k order, so with acc=false it must match bitwise (tolerance 0).
// With acc=true the tiled path sums the k products first and adds the
// pre-existing C once at writeback, while naive carries C through every
// partial sum — a reordering whose drift is O(k·eps), the same order as the
// AVX2 kernel's skipped FMA roundings. Both get a k-scaled tolerance that
// stays far below the O(1) errors a real indexing bug produces.
func parityTol(k int, acc bool) float64 {
	if gemmKernelName == "scalar-4x4" && !acc {
		return 0
	}
	tol := 2e-7 * float64(k)
	if tol < 1e-5 {
		tol = 1e-5
	}
	return tol
}

// parityShapes are the edge sizes the packing layout must survive: 1,
// MR/NR/KC boundaries ±1, and non-multiples of every tile parameter. MR and
// NR cover both kernel shapes (4×4 scalar, 6×16 AVX2).
var parityShapes = []int{1, 2, 3, 4, 5, 6, 7, 8, 15, 16, 17, 31, 48, 63, 255, 256, 257}

func TestGEMMParityAgainstNaive(t *testing.T) {
	rng := NewRNG(7)
	check := func(t *testing.T, m, k, n int, acc bool) {
		a := RandNormal(rng, 1, m, k)
		b := RandNormal(rng, 1, k, n)
		out := New(m, n)
		var want *Tensor
		if acc {
			seed := RandNormal(rng, 1, m, n)
			out.CopyFrom(seed)
			want = naiveOracle(a, b, m, k, n, true, seed)
		} else {
			// Pre-poison the output: the kernel must overwrite, not accumulate.
			out.Fill(float32(math.NaN()))
			want = naiveOracle(a, b, m, k, n, false, nil)
		}
		gemmParallel(out.data, a.data, b.data, m, k, n, acc)
		if d := maxKernelDiff(out, want); d > parityTol(k, acc) {
			t.Fatalf("m=%d k=%d n=%d acc=%v kernel=%s: max blended diff %g", m, k, n, acc, gemmKernelName, d)
		}
	}
	run := func(t *testing.T) {
		// Cross product of edge sizes, thinned to keep runtime sane: every
		// pair of edge m,n with a few k values, plus random rectangles.
		ks := []int{1, 3, 16, 63, 255, 257}
		for _, m := range parityShapes {
			for _, n := range parityShapes {
				k := ks[(m+n)%len(ks)]
				check(t, m, k, n, (m+n+k)%2 == 0)
			}
		}
		for i := 0; i < 25; i++ {
			m, k, n := 1+rng.Intn(200), 1+rng.Intn(300), 1+rng.Intn(200)
			check(t, m, k, n, i%2 == 1)
		}
	}
	t.Run("active-kernel", run)
	t.Run("scalar-kernel", func(t *testing.T) {
		restore := forceScalarKernel()
		defer restore()
		run(t)
	})
}

func TestGEMMParityParallelTiles(t *testing.T) {
	// Force real goroutine fan-out over the tile grid regardless of the
	// host's core count, so the grid decomposition itself is exercised.
	prev := parallel.DefaultWorkers
	parallel.DefaultWorkers = 7
	defer func() { parallel.DefaultWorkers = prev }()
	rng := NewRNG(11)
	for _, sz := range [][3]int{{65, 130, 300}, {512, 64, 512}, {31, 700, 29}} {
		m, k, n := sz[0], sz[1], sz[2]
		a := RandNormal(rng, 1, m, k)
		b := RandNormal(rng, 1, k, n)
		out := New(m, n)
		gemmParallel(out.data, a.data, b.data, m, k, n, false)
		want := naiveOracle(a, b, m, k, n, false, nil)
		if d := maxKernelDiff(out, want); d > parityTol(k, false) {
			t.Fatalf("m=%d k=%d n=%d: max blended diff %g", m, k, n, d)
		}
	}
}

func TestMatmulSerialStridedWindows(t *testing.T) {
	// matmulSerial must honor lda/ldb/ldc: multiply a column window of a
	// wider B into a column window of a wider C, as convolution row chunks
	// do.
	rng := NewRNG(13)
	m, k, n := 37, 150, 90
	ldb, ldc := 137, 201
	colOff := 19
	a := RandNormal(rng, 1, m, k)
	bWide := RandNormal(rng, 1, k, ldb)
	cWide := New(m, ldc)
	// Reference: extract the window densely and multiply naively.
	bDense := New(k, n)
	for kk := 0; kk < k; kk++ {
		copy(bDense.data[kk*n:(kk+1)*n], bWide.data[kk*ldb+colOff:kk*ldb+colOff+n])
	}
	want := naiveOracle(a, bDense, m, k, n, false, nil)
	matmulSerial(cWide.data[colOff:], ldc, a.data, k, bWide.data[colOff:], ldb, m, k, n, false)
	got := New(m, n)
	for i := 0; i < m; i++ {
		copy(got.data[i*n:(i+1)*n], cWide.data[i*ldc+colOff:i*ldc+colOff+n])
	}
	if d := maxKernelDiff(got, want); d > parityTol(k, false) {
		t.Fatalf("strided window: max blended diff %g", d)
	}
	// Untouched columns of the wide C must remain zero.
	for i := 0; i < m; i++ {
		for j := 0; j < ldc; j++ {
			if j >= colOff && j < colOff+n {
				continue
			}
			if cWide.data[i*ldc+j] != 0 {
				t.Fatalf("write outside window at (%d,%d)", i, j)
			}
		}
	}
}

func TestWeightPackReuse(t *testing.T) {
	rng := NewRNG(17)
	m, k, n := 48, 288, 256
	a := RandNormal(rng, 1, m, k)
	wp := newWeightPack(a.data, k, m, k)
	defer wp.release()
	for i := 0; i < 3; i++ {
		b := RandNormal(rng, 1, k, n)
		out := New(m, n)
		wp.mulInto(out.data, n, b.data, n, n, false)
		want := naiveOracle(a, b, m, k, n, false, nil)
		if d := maxKernelDiff(out, want); d > parityTol(k, false) {
			t.Fatalf("reuse %d: max blended diff %g", i, d)
		}
	}
}

func TestMatMulAccMatchesSeparate(t *testing.T) {
	rng := NewRNG(19)
	for _, sz := range [][3]int{{5, 9, 7}, {64, 64, 64}, {100, 257, 33}} {
		m, k, n := sz[0], sz[1], sz[2]
		a := RandNormal(rng, 1, m, k)
		b := RandNormal(rng, 1, k, n)
		base := RandNormal(rng, 1, m, n)
		got := base.Clone()
		MatMulAcc(got, a, b)
		want := naiveOracle(a, b, m, k, n, true, base)
		if d := maxKernelDiff(got, want); d > parityTol(k, true) {
			t.Fatalf("%v: max blended diff %g", sz, d)
		}
	}
}

func TestScratchPoolClasses(t *testing.T) {
	// A too-small pooled buffer must never be dropped: each size class only
	// hands out buffers that satisfy the request, and returning a buffer
	// keeps it available for its class.
	big := getScratch(5000)
	putScratch(big)
	small := getScratch(100) // different class; must not steal/drop big's slot
	putScratch(small)
	again := getScratch(5000)
	if cap(again) < 5000 {
		t.Fatalf("pooled capacity %d < 5000", cap(again))
	}
	putScratch(again)
	for _, n := range []int{1, 63, 64, 65, 4095, 4096, 4097} {
		buf := getScratch(n)
		if len(buf) != n {
			t.Fatalf("getScratch(%d) returned len %d", n, len(buf))
		}
		putScratch(buf)
	}
	if getScratch(0) != nil {
		t.Fatal("getScratch(0) must be nil")
	}
}

func BenchmarkGEMMKernelOnly(b *testing.B) {
	// The packed micro-kernel in isolation (no packing, no writeback): the
	// per-core roofline the full GEMM is chasing.
	kc := gemmKC
	a := make([]float32, kc*gemmMR)
	bp := make([]float32, kc*gemmNR)
	cb := make([]float32, gemmMaxTile)
	for i := range a {
		a[i] = 1
	}
	for i := range bp {
		bp[i] = 1
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		microKernel(a, bp, cb[:gemmMR*gemmNR], kc, true)
	}
	flops := 2 * float64(gemmMR) * float64(gemmNR) * float64(kc)
	b.ReportMetric(flops*float64(b.N)/b.Elapsed().Seconds()/1e9, "gflops")
	if math.IsNaN(float64(cb[0])) {
		b.Fatal("kernel produced NaN")
	}
}
