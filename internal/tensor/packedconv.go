package tensor

import "fmt"

// PackedConv is a convolution prepared once and executed many times: the
// weight tensor is reshaped and validated at construction, its GEMM A-panels
// are packed lazily on first use and then kept for the lifetime of the
// value, and bias addition plus an optional trailing ReLU are fused into the
// convolution epilogue. It is the execution unit of compiled inference plans
// (internal/infer), where the same weights run on every request: with a
// per-call Conv2D the sync.Once pack amortizes only across one batch, while
// a PackedConv amortizes it across the process lifetime.
//
// A PackedConv is immutable after construction and safe for concurrent use.
// The weight tensor (and bias slice) must not be modified afterwards — the
// pack holds references, not copies, until first use packs the panels.
type PackedConv struct {
	weight *Tensor // (OC, C, KH, KW); retained to keep wp.src reachable
	bias   []float32
	wp     *weightPack

	oc, c, kh, kw int
	stride, pad   int
	relu          bool
}

// NewPackedConv prepares a convolution with fixed weight (OC, C, KH, KW),
// optional bias (nil or length OC), stride, padding, and an optional fused
// ReLU epilogue. A fully-connected layer is the degenerate case: reshape its
// (OUT, IN) weight to (OUT, IN, 1, 1) and feed (N, IN, 1, 1) inputs — the
// pointwise fast path then runs it as a plain matmul with no per-call
// transpose or repacking.
func NewPackedConv(weight *Tensor, bias []float32, stride, pad int, relu bool) *PackedConv {
	oc, c, kh, kw := dims4("NewPackedConv weight", weight)
	if bias != nil && len(bias) != oc {
		panic(fmt.Sprintf("tensor: NewPackedConv bias length %d, want %d", len(bias), oc))
	}
	if stride <= 0 || pad < 0 {
		panic(fmt.Sprintf("tensor: NewPackedConv stride=%d pad=%d", stride, pad))
	}
	kdim := c * kh * kw
	wmat := weight.Reshape(oc, kdim)
	return &PackedConv{
		weight: weight, bias: bias,
		wp: newWeightPack(wmat.data, kdim, oc, kdim),
		oc: oc, c: c, kh: kh, kw: kw,
		stride: stride, pad: pad, relu: relu,
	}
}

// InChannels returns the input channel count the convolution expects.
func (pc *PackedConv) InChannels() int { return pc.c }

// OutChannels returns the output channel count.
func (pc *PackedConv) OutChannels() int { return pc.oc }

// OutSize returns the output spatial size for an H×W input.
func (pc *PackedConv) OutSize(h, w int) (oh, ow int) {
	return ConvOut(h, pc.kh, pc.stride, pc.pad), ConvOut(w, pc.kw, pc.stride, pc.pad)
}

// KernelSize returns the filter's spatial extent (KH, KW).
func (pc *PackedConv) KernelSize() (kh, kw int) { return pc.kh, pc.kw }

// Stride returns the convolution stride.
func (pc *PackedConv) Stride() int { return pc.stride }

// Pad returns the spatial zero-padding applied to each border.
func (pc *PackedConv) Pad() int { return pc.pad }

// HasReLU reports whether a ReLU epilogue is fused into the convolution.
func (pc *PackedConv) HasReLU() bool { return pc.relu }

// Weights returns the (OC, C, KH, KW) weight tensor. Callers must treat it
// as read-only; the PTQ pass (internal/infer) reads it to derive the int8
// form of a compiled plan.
func (pc *PackedConv) Weights() *Tensor { return pc.weight }

// Bias returns the bias slice (nil when the convolution has none), also
// read-only.
func (pc *PackedConv) Bias() []float32 { return pc.bias }

// ForwardInto convolves input (N, C, H, W) into the caller-provided out
// (N, OC, OH, OW), applying the fused bias/ReLU epilogue. out must not alias
// input. It allocates nothing beyond pooled scratch, so a steady-state
// caller that reuses its output tensors runs allocation-free.
func (pc *PackedConv) ForwardInto(out, input *Tensor) {
	n, c, h, w := dims4("PackedConv input", input)
	on, oc, oh, ow := dims4("PackedConv out", out)
	if c != pc.c {
		panic(fmt.Sprintf("tensor: PackedConv input has %d channels, want %d", c, pc.c))
	}
	eh, ew := pc.OutSize(h, w)
	if on != n || oc != pc.oc || oh != eh || ow != ew {
		panic(fmt.Sprintf("tensor: PackedConv out shape %v, want [%d %d %d %d]", out.shape, n, pc.oc, eh, ew))
	}
	if eh <= 0 || ew <= 0 {
		panic(fmt.Sprintf("tensor: PackedConv produces empty output for input %dx%d", h, w))
	}
	convInto(out, input, pc.wp, pc.bias, pc.relu, pc.kh, pc.kw, pc.stride, pc.pad)
}
