package tensor

import (
	"math"
	"testing"
)

func TestActScaleDegenerate(t *testing.T) {
	for _, m := range []float32{0, -1, float32(math.NaN()), float32(math.Inf(1))} {
		if s := ActScale(m); s != 1 {
			t.Errorf("ActScale(%v) = %v, want 1", m, s)
		}
	}
	if s := ActScale(127); s != 1 {
		t.Errorf("ActScale(127) = %v, want 1", s)
	}
	if s := ActScale(254); s != 2 {
		t.Errorf("ActScale(254) = %v, want 2", s)
	}
}

func TestQuantizeRoundTripBound(t *testing.T) {
	rng := NewRNG(11)
	src := RandNormal(rng, 2.5, 1024).Data()
	scale := ActScale(MaxAbs(src))
	q := make([]int8, len(src))
	back := make([]float32, len(src))
	QuantizeInto(q, src, scale)
	DequantizeInto(back, q, scale)
	half := float64(scale) * 0.5000001
	for i, v := range src {
		if d := math.Abs(float64(v - back[i])); d > half {
			t.Fatalf("round-trip error %g at %d exceeds scale/2 = %g (v=%g q=%d)", d, i, half, v, q[i])
		}
	}
}

func TestQuantizeWeightsPerChannel(t *testing.T) {
	rng := NewRNG(3)
	const oc, kdim = 5, 37
	w := RandNormal(rng, 0.4, oc, kdim).Data()
	// Make one row all-zero and give another a dominant outlier.
	for i := 0; i < kdim; i++ {
		w[2*kdim+i] = 0
	}
	w[4*kdim+7] = 50

	q, scales := QuantizeWeightsPerChannel(w, oc, kdim)
	for o := 0; o < oc; o++ {
		row := w[o*kdim : (o+1)*kdim]
		m := MaxAbs(row)
		want := float32(1)
		if m > 0 {
			want = m / QWeightMax
		}
		if scales[o] != want {
			t.Fatalf("row %d scale = %v, want %v", o, scales[o], want)
		}
		for i, v := range row {
			got := q[o*kdim+i]
			if got > QWeightMax || got < -QWeightMax {
				t.Fatalf("row %d q[%d] = %d outside ±%d", o, i, got, QWeightMax)
			}
			if d := math.Abs(float64(v) - float64(scales[o])*float64(got)); d > float64(scales[o])*0.5000001 {
				t.Fatalf("row %d dequant error %g exceeds half-scale", o, d)
			}
		}
	}
}

// FuzzQuantizeRoundTrip feeds adversarial values and scales through the
// quantize/dequantize pair: the helpers must never panic or emit NaN for
// usable inputs, and in-range values must reconstruct within half the
// effective scale.
func FuzzQuantizeRoundTrip(f *testing.F) {
	f.Add(float32(0.5), float32(0.01))
	f.Add(float32(-3.2), float32(0))
	f.Add(float32(1e30), float32(-1))
	f.Add(float32(math.Inf(1)), float32(math.NaN()))
	f.Add(float32(127.49), float32(1))
	f.Fuzz(func(t *testing.T, v, scale float32) {
		src := []float32{v}
		q := make([]int8, 1)
		back := make([]float32, 1)
		QuantizeInto(q, src, scale)
		DequantizeInto(back, q, scale)

		if q[0] > QActMax || q[0] < -QActMax {
			t.Fatalf("q = %d outside ±%d", q[0], QActMax)
		}
		eff := float64(sanitizeScale(scale))
		if math.IsNaN(float64(back[0])) {
			t.Fatalf("dequantize produced NaN for v=%g scale=%g", v, scale)
		}
		if math.IsNaN(float64(v)) {
			if q[0] != 0 {
				t.Fatalf("NaN quantized to %d, want 0", q[0])
			}
			return
		}
		av := math.Abs(float64(v))
		if av <= eff*QActMax && !math.IsInf(float64(v), 0) {
			// Half-scale rounding bound, padded for the float32 divide.
			bound := eff*0.5 + 1e-6*(av+eff)
			if d := math.Abs(float64(v) - float64(back[0])); d > bound {
				t.Fatalf("round-trip error %g > %g for v=%g scale=%g (eff %g, q %d)", d, bound, v, scale, eff, q[0])
			}
		} else if abs := int8(QActMax); q[0] != abs && q[0] != -abs {
			t.Fatalf("out-of-range v=%g quantized to %d, want saturation at ±%d (scale %g)", v, q[0], QActMax, eff)
		}
	})
}
