package tensor

import (
	"math"
	"sync"
	"testing"
)

func maxAbsDiff(a, b []float32) float64 {
	if len(a) != len(b) {
		return math.Inf(1)
	}
	worst := 0.0
	for i := range a {
		d := math.Abs(float64(a[i]) - float64(b[i]))
		if d > worst {
			worst = d
		}
	}
	return worst
}

// TestPackedConvMatchesConv2D pins the persistent-pack path to the per-call
// Conv2D path over the kernel/stride/pad shapes the search space produces,
// with and without bias.
func TestPackedConvMatchesConv2D(t *testing.T) {
	r := NewRNG(11)
	cases := []struct {
		n, c, h, w, oc, k, stride, pad int
		bias                           bool
	}{
		{2, 3, 16, 16, 8, 3, 1, 1, true},
		{1, 5, 17, 13, 6, 3, 2, 1, false},
		{3, 4, 12, 12, 7, 7, 2, 3, true},
		{2, 8, 9, 9, 8, 1, 1, 0, true},   // pointwise stride 1 (in-place columns)
		{2, 8, 10, 10, 8, 1, 2, 0, true}, // pointwise strided
		{1, 2, 8, 8, 4, 3, 1, 0, false},  // pad 0
	}
	for _, tc := range cases {
		x := RandUniform(r, -1, 1, tc.n, tc.c, tc.h, tc.w)
		w := RandUniform(r, -1, 1, tc.oc, tc.c, tc.k, tc.k)
		var bias *Tensor
		var biasSlice []float32
		if tc.bias {
			bias = RandUniform(r, -1, 1, tc.oc)
			biasSlice = bias.Data()
		}
		want := Conv2D(x, w, bias, tc.stride, tc.pad)

		pc := NewPackedConv(w, biasSlice, tc.stride, tc.pad, false)
		oh, ow := pc.OutSize(tc.h, tc.w)
		got := New(tc.n, tc.oc, oh, ow)
		pc.ForwardInto(got, x)
		if d := maxAbsDiff(want.Data(), got.Data()); d > 1e-5 {
			t.Errorf("case %+v: packed conv diverges from Conv2D by %g", tc, d)
		}
		// Second run into a dirty buffer must produce identical output (the
		// epilogue and GEMM writeback must fully overwrite, not accumulate).
		for i := range got.Data() {
			got.Data()[i] = 999
		}
		pc.ForwardInto(got, x)
		if d := maxAbsDiff(want.Data(), got.Data()); d > 1e-5 {
			t.Errorf("case %+v: packed conv not idempotent into dirty buffer (diff %g)", tc, d)
		}
	}
}

// TestPackedConvFusedReLU checks the epilogue ReLU against the two-pass
// reference.
func TestPackedConvFusedReLU(t *testing.T) {
	r := NewRNG(12)
	x := RandUniform(r, -1, 1, 2, 3, 14, 14)
	w := RandUniform(r, -1, 1, 6, 3, 3, 3)
	bias := RandUniform(r, -1, 1, 6)

	want := ReLU(Conv2D(x, w, bias, 2, 1))
	pc := NewPackedConv(w, bias.Data(), 2, 1, true)
	oh, ow := pc.OutSize(14, 14)
	got := New(2, 6, oh, ow)
	pc.ForwardInto(got, x)
	if d := maxAbsDiff(want.Data(), got.Data()); d > 1e-5 {
		t.Fatalf("fused ReLU diverges from two-pass reference by %g", d)
	}
	neg := 0
	for _, v := range got.Data() {
		if v < 0 {
			neg++
		}
	}
	if neg != 0 {
		t.Fatalf("fused ReLU left %d negative outputs", neg)
	}
}

// TestPackedConvAsFullyConnected runs an FC layer through the pointwise
// path — the compiled plan's Gemm lowering — against MatMul + transpose.
func TestPackedConvAsFullyConnected(t *testing.T) {
	r := NewRNG(13)
	const n, in, out = 4, 24, 5
	x := RandUniform(r, -1, 1, n, in)
	w := RandUniform(r, -1, 1, out, in)
	bias := RandUniform(r, -1, 1, out)

	want := MatMul(x, Transpose2D(w))
	for row := 0; row < n; row++ {
		for j := 0; j < out; j++ {
			want.Data()[row*out+j] += bias.Data()[j]
		}
	}

	pc := NewPackedConv(w.Reshape(out, in, 1, 1), bias.Data(), 1, 0, false)
	got := New(n, out)
	pc.ForwardInto(got.Reshape(n, out, 1, 1), x.Reshape(n, in, 1, 1))
	if d := maxAbsDiff(want.Data(), got.Data()); d > 1e-5 {
		t.Fatalf("FC-as-pointwise diverges from MatMul reference by %g", d)
	}
}

// TestPackedConvConcurrent hammers one shared pack from many goroutines;
// run under -race this pins the lazy sync.Once pack and the read-only
// execution path as safe to share.
func TestPackedConvConcurrent(t *testing.T) {
	r := NewRNG(14)
	x := RandUniform(r, -1, 1, 2, 4, 16, 16)
	w := RandUniform(r, -1, 1, 8, 4, 3, 3)
	pc := NewPackedConv(w, nil, 1, 1, true)
	oh, ow := pc.OutSize(16, 16)
	ref := New(2, 8, oh, ow)
	pc.ForwardInto(ref, x)

	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			out := New(2, 8, oh, ow)
			for i := 0; i < 20; i++ {
				pc.ForwardInto(out, x)
			}
			if d := maxAbsDiff(ref.Data(), out.Data()); d != 0 {
				t.Errorf("concurrent forward diverged by %g", d)
			}
		}()
	}
	wg.Wait()
}

func TestIntoOpsMatchAllocatingOps(t *testing.T) {
	r := NewRNG(15)
	a := RandUniform(r, -1, 1, 2, 3, 5, 7)
	b := RandUniform(r, -1, 1, 2, 3, 5, 7)

	dst := New(2, 3, 5, 7)
	AddInto(dst, a, b)
	if d := maxAbsDiff(Add(a, b).Data(), dst.Data()); d != 0 {
		t.Errorf("AddInto diverges by %g", d)
	}
	AddReLUInto(dst, a, b)
	if d := maxAbsDiff(ReLU(Add(a, b)).Data(), dst.Data()); d != 0 {
		t.Errorf("AddReLUInto diverges by %g", d)
	}
	ReLUInto(dst, a)
	if d := maxAbsDiff(ReLU(a).Data(), dst.Data()); d != 0 {
		t.Errorf("ReLUInto diverges by %g", d)
	}
	// Aliased destination: dst == a is the in-place residual join.
	aCopy := New(a.Shape()...)
	copy(aCopy.Data(), a.Data())
	AddReLUInto(aCopy, aCopy, b)
	if d := maxAbsDiff(ReLU(Add(a, b)).Data(), aCopy.Data()); d != 0 {
		t.Errorf("aliased AddReLUInto diverges by %g", d)
	}

	x := RandUniform(r, -1, 1, 2, 4, 11, 9)
	wantPool, _ := MaxPool2D(x, 3, 2, 0)
	gotPool := New(wantPool.Shape()...)
	MaxPool2DInto(gotPool, x, 3, 2, 0)
	if d := maxAbsDiff(wantPool.Data(), gotPool.Data()); d != 0 {
		t.Errorf("MaxPool2DInto (pad 0) diverges by %g", d)
	}
	wantPool1, _ := MaxPool2D(x, 3, 2, 1)
	gotPool1 := New(wantPool1.Shape()...)
	MaxPool2DInto(gotPool1, x, 3, 2, 1)
	if d := maxAbsDiff(wantPool1.Data(), gotPool1.Data()); d != 0 {
		t.Errorf("MaxPool2DInto (pad 1) diverges by %g", d)
	}

	wantGAP := GlobalAvgPool2D(x)
	gotGAP := New(2, 4)
	GlobalAvgPool2DInto(gotGAP, x)
	if d := maxAbsDiff(wantGAP.Data(), gotGAP.Data()); d != 0 {
		t.Errorf("GlobalAvgPool2DInto diverges by %g", d)
	}
}
