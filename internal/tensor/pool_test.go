package tensor

import (
	"math"
	"testing"
	"testing/quick"
)

func TestMaxPool2DBasic(t *testing.T) {
	// 1×1×4×4 input with known values.
	in := FromSlice([]float32{
		1, 2, 3, 4,
		5, 6, 7, 8,
		9, 10, 11, 12,
		13, 14, 15, 16,
	}, 1, 1, 4, 4)
	out, arg := MaxPool2D(in, 2, 2, 0)
	want := []float32{6, 8, 14, 16}
	for i, v := range out.Data() {
		if v != want[i] {
			t.Fatalf("MaxPool=%v want %v", out.Data(), want)
		}
	}
	wantArg := []int32{5, 7, 13, 15}
	for i, v := range arg {
		if v != wantArg[i] {
			t.Fatalf("argmax=%v want %v", arg, wantArg)
		}
	}
}

func TestMaxPool2DStride1Pad1(t *testing.T) {
	in := FromSlice([]float32{
		1, 2,
		3, 4,
	}, 1, 1, 2, 2)
	out, _ := MaxPool2D(in, 3, 1, 1)
	// Every 3×3 window clipped to the image contains 4 → all outputs are 4
	// except corners which still include 4. With k=3,s=1,p=1 on 2×2 → 2×2 out.
	if out.Dim(2) != 2 || out.Dim(3) != 2 {
		t.Fatalf("shape %v", out.Shape())
	}
	for _, v := range out.Data() {
		if v != 4 {
			t.Fatalf("out=%v", out.Data())
		}
	}
}

func TestMaxPool2DBackwardRouting(t *testing.T) {
	in := FromSlice([]float32{
		1, 2, 3, 4,
		5, 6, 7, 8,
		9, 10, 11, 12,
		13, 14, 15, 16,
	}, 1, 1, 4, 4)
	out, arg := MaxPool2D(in, 2, 2, 0)
	gout := Ones(out.Shape()...)
	gin := MaxPool2DBackward(gout, arg, in.Shape())
	// Gradient lands exactly on the max positions.
	sum := gin.Sum()
	if sum != 4 {
		t.Fatalf("gradient mass %v, want 4", sum)
	}
	for _, idx := range []int{5, 7, 13, 15} {
		if gin.Data()[idx] != 1 {
			t.Fatalf("gradient missing at %d: %v", idx, gin.Data())
		}
	}
}

func TestMaxPoolGradientMassConserved(t *testing.T) {
	// Property: with non-overlapping windows the backward pass conserves
	// gradient mass.
	f := func(seed uint64) bool {
		r := NewRNG(seed)
		in := RandNormal(r, 1, 2, 3, 8, 8)
		out, arg := MaxPool2D(in, 2, 2, 0)
		gout := RandNormal(r, 1, out.Shape()...)
		gin := MaxPool2DBackward(gout, arg, in.Shape())
		return math.Abs(gin.Sum()-gout.Sum()) < 1e-3
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

func TestGlobalAvgPool2D(t *testing.T) {
	in := FromSlice([]float32{
		1, 2, 3, 4, // plane (0,0): mean 2.5
		10, 10, 10, 10, // plane (0,1): mean 10
	}, 1, 2, 2, 2)
	out := GlobalAvgPool2D(in)
	if out.Dim(0) != 1 || out.Dim(1) != 2 {
		t.Fatalf("shape %v", out.Shape())
	}
	if out.At(0, 0) != 2.5 || out.At(0, 1) != 10 {
		t.Fatalf("out=%v", out.Data())
	}
}

func TestGlobalAvgPoolBackward(t *testing.T) {
	gout := FromSlice([]float32{4, 8}, 1, 2)
	gin := GlobalAvgPool2DBackward(gout, []int{1, 2, 2, 2})
	// Each of the 4 positions in plane 0 gets 4/4 = 1; plane 1 gets 2.
	for i := 0; i < 4; i++ {
		if gin.Data()[i] != 1 {
			t.Fatalf("plane0 grad %v", gin.Data())
		}
	}
	for i := 4; i < 8; i++ {
		if gin.Data()[i] != 2 {
			t.Fatalf("plane1 grad %v", gin.Data())
		}
	}
}

func TestAvgPool2D(t *testing.T) {
	in := FromSlice([]float32{
		1, 2, 3, 4,
		5, 6, 7, 8,
		9, 10, 11, 12,
		13, 14, 15, 16,
	}, 1, 1, 4, 4)
	out := AvgPool2D(in, 2, 2, 0)
	want := []float32{3.5, 5.5, 11.5, 13.5}
	for i, v := range out.Data() {
		if v != want[i] {
			t.Fatalf("AvgPool=%v want %v", out.Data(), want)
		}
	}
}

func TestAvgPool2DPaddingCountsOnlyValid(t *testing.T) {
	in := Ones(1, 1, 2, 2)
	out := AvgPool2D(in, 3, 2, 1)
	// One output: window covers the whole image (4 valid taps of value 1).
	if out.Numel() != 1 || out.Data()[0] != 1 {
		t.Fatalf("out=%v shape=%v", out.Data(), out.Shape())
	}
}

func TestRNGDeterminism(t *testing.T) {
	a, b := NewRNG(99), NewRNG(99)
	for i := 0; i < 100; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatal("RNG not deterministic")
		}
	}
}

func TestRNGFloat64Range(t *testing.T) {
	r := NewRNG(1)
	for i := 0; i < 10000; i++ {
		v := r.Float64()
		if v < 0 || v >= 1 {
			t.Fatalf("Float64 out of range: %v", v)
		}
	}
}

func TestRNGNormalMoments(t *testing.T) {
	r := NewRNG(2024)
	n := 50000
	sum, sumSq := 0.0, 0.0
	for i := 0; i < n; i++ {
		v := r.NormFloat64()
		sum += v
		sumSq += v * v
	}
	mean := sum / float64(n)
	variance := sumSq/float64(n) - mean*mean
	if math.Abs(mean) > 0.02 {
		t.Fatalf("normal mean %v", mean)
	}
	if math.Abs(variance-1) > 0.05 {
		t.Fatalf("normal variance %v", variance)
	}
}

func TestRNGPermIsPermutation(t *testing.T) {
	f := func(seed uint64, nRaw uint8) bool {
		n := int(nRaw%50) + 1
		p := NewRNG(seed).Perm(n)
		seen := make([]bool, n)
		for _, v := range p {
			if v < 0 || v >= n || seen[v] {
				return false
			}
			seen[v] = true
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestRNGSplitIndependence(t *testing.T) {
	r := NewRNG(5)
	s := r.Split()
	// Streams should diverge immediately.
	if r.Uint64() == s.Uint64() {
		t.Fatal("split stream identical to parent")
	}
}

func TestRandUniformRange(t *testing.T) {
	r := NewRNG(8)
	u := RandUniform(r, -2, 3, 1000)
	if u.Min() < -2 || u.Max() >= 3 {
		t.Fatalf("uniform out of range: [%v, %v]", u.Min(), u.Max())
	}
}
