package tensor

import "math"

// RNG is a small, fast, deterministic pseudo-random generator (SplitMix64)
// used for weight initialization and data synthesis. It is deliberately
// independent of math/rand so that results are stable across Go releases,
// which keeps golden-value tests and reproduced experiment tables stable.
type RNG struct {
	state uint64
	// cached spare normal deviate for the Box–Muller transform
	spare    float64
	hasSpare bool
}

// NewRNG returns a generator seeded with seed.
func NewRNG(seed uint64) *RNG { return &RNG{state: seed} }

// Uint64 advances the generator and returns 64 random bits.
func (r *RNG) Uint64() uint64 {
	r.state += 0x9E3779B97F4A7C15
	z := r.state
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return z ^ (z >> 31)
}

// Float64 returns a uniform value in [0, 1).
func (r *RNG) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Float32 returns a uniform value in [0, 1).
func (r *RNG) Float32() float32 { return float32(r.Float64()) }

// Intn returns a uniform integer in [0, n). It panics if n <= 0.
func (r *RNG) Intn(n int) int {
	if n <= 0 {
		panic("tensor: RNG.Intn with non-positive n")
	}
	return int(r.Uint64() % uint64(n))
}

// NormFloat64 returns a standard normal deviate via Box–Muller.
func (r *RNG) NormFloat64() float64 {
	if r.hasSpare {
		r.hasSpare = false
		return r.spare
	}
	var u, v, s float64
	for {
		u = 2*r.Float64() - 1
		v = 2*r.Float64() - 1
		s = u*u + v*v
		if s > 0 && s < 1 {
			break
		}
	}
	m := math.Sqrt(-2 * math.Log(s) / s)
	r.spare = v * m
	r.hasSpare = true
	return u * m
}

// Uniform returns a value uniform in [lo, hi).
func (r *RNG) Uniform(lo, hi float64) float64 {
	return lo + (hi-lo)*r.Float64()
}

// Perm returns a random permutation of [0, n) via Fisher–Yates.
func (r *RNG) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		p[i], p[j] = p[j], p[i]
	}
	return p
}

// Split derives an independent generator; useful for giving each parallel
// worker or each dataset region its own stream.
func (r *RNG) Split() *RNG {
	return NewRNG(r.Uint64() ^ 0xD1B54A32D192ED03)
}

// RandNormal fills a new tensor with N(0, std²) values.
func RandNormal(r *RNG, std float64, shape ...int) *Tensor {
	t := New(shape...)
	for i := range t.data {
		t.data[i] = float32(r.NormFloat64() * std)
	}
	return t
}

// RandUniform fills a new tensor with values uniform in [lo, hi).
func RandUniform(r *RNG, lo, hi float64, shape ...int) *Tensor {
	t := New(shape...)
	for i := range t.data {
		t.data[i] = float32(r.Uniform(lo, hi))
	}
	return t
}
