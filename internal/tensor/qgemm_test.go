package tensor

import (
	"math"
	"math/rand"
	"testing"

	"drainnas/internal/parallel"
)

// randQ8 fills a fresh s8 slice with uniform values in [-bound, bound].
func randQ8(r *rand.Rand, n, bound int) []int8 {
	xs := make([]int8, n)
	for i := range xs {
		xs[i] = int8(r.Intn(2*bound+1) - bound)
	}
	return xs
}

// qNaive computes the m×n int32 reference product of the s8 matrices
// w (m×k) and b (k×n, leading dimension ldb).
func qNaive(w []int8, b []int8, ldb, m, k, n int) []int32 {
	out := make([]int32, m*n)
	for r := 0; r < m; r++ {
		for j := 0; j < n; j++ {
			s := int32(0)
			for kk := 0; kk < k; kk++ {
				s += int32(w[r*k+kk]) * int32(b[kk*ldb+j])
			}
			out[r*n+j] = s
		}
	}
	return out
}

// TestQGemmPackedParity drives the packed path (packQA, packQB, qKernel)
// over edge shapes and checks the offset-compensated tiles against the
// naive int32 product. Shapes straddle qMR/qNR/k-quad boundaries.
func TestQGemmPackedParity(t *testing.T) {
	r := rand.New(rand.NewSource(41))
	shapes := []int{1, 2, 3, 4, 5, 7, 8, 15, 16, 17, 31, 33, 64}
	for _, m := range shapes {
		for _, k := range shapes {
			for _, n := range shapes {
				w := randQ8(r, m*k, QWeightMax)
				b := randQ8(r, k*n, QActMax)
				want := qNaive(w, b, n, m, k, n)

				qa := packQA(w, m, k)
				pb := packQB(b, n, k, n)
				cbuf := make([]int32, qMR*qNR)
				aslot := qa.kQuads * qMR * 4
				bslot := pb.kQuads * qNR * 4
				for rt := 0; rt < qa.rowTiles; rt++ {
					for p := 0; p < pb.nPanels; p++ {
						qKernel(qa.buf[rt*aslot:], pb.buf[p*bslot:], cbuf, qa.kQuads)
						for rr := 0; rr < qMR; rr++ {
							row := rt*qMR + rr
							if row >= m {
								continue
							}
							comp := int32(0)
							for _, v := range w[row*k : (row+1)*k] {
								comp += 128 * int32(v)
							}
							for j := 0; j < qNR; j++ {
								col := p*qNR + j
								if col >= n {
									continue
								}
								got := cbuf[rr*qNR+j] - comp
								if got != want[row*n+col] {
									t.Fatalf("m=%d k=%d n=%d: C[%d][%d] = %d, want %d", m, k, n, row, col, got, want[row*n+col])
								}
							}
						}
					}
				}
				pb.release()
			}
		}
	}
}

// TestQKernelScalarVsAVX2 checks the assembly kernel bit-for-bit against
// the scalar reference on random packed operands. With weights bounded to
// ±QWeightMax the saturating VPMADDUBSW chain is exact, so the tiles must
// be identical, not merely close.
func TestQKernelScalarVsAVX2(t *testing.T) {
	if QGemmKernelName() == "scalar-4x16" {
		t.Skip("AVX2 int8 kernel not selected on this host")
	}
	r := rand.New(rand.NewSource(97))
	for _, kq := range []int{1, 2, 3, 7, 16, 63} {
		a := randQ8(r, kq*qMR*4, QWeightMax)
		b := make([]uint8, kq*qNR*4)
		for i := range b {
			b[i] = uint8(r.Intn(256))
		}
		want := make([]int32, qMR*qNR)
		got := make([]int32, qMR*qNR)
		qkernelScalar4x16(a, b, want, kq)
		qKernel(a, b, got, kq)
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("kq=%d: tile[%d] = %d (avx2), want %d (scalar)", kq, i, got[i], want[i])
			}
		}
	}
}

// qconvRef computes the exact expected QuantizedConv output by replaying
// its integer arithmetic naively: same quantized weights, naive int32
// convolution, same epilogue formula.
func qconvRef(qc *QuantizedConv, in []int8, n, h, w int) (outQ []int8, outF []float32) {
	oh, ow := qc.OutSize(h, w)
	c := qc.c
	kdim := c * qc.kh * qc.kw
	if qc.floatOut {
		outF = make([]float32, n*qc.oc*oh*ow)
	} else {
		outQ = make([]int8, n*qc.oc*oh*ow)
	}
	cols := make([]int8, kdim*oh*ow)
	for s := 0; s < n; s++ {
		QIm2ColRows(in[s*c*h*w:(s+1)*c*h*w], c, h, w, qc.kh, qc.kw, qc.stride, qc.pad, 0, oh, cols)
		acc := qNaive(qc.qw, cols, oh*ow, qc.oc, kdim, oh*ow)
		for o := 0; o < qc.oc; o++ {
			for i := 0; i < oh*ow; i++ {
				v := qc.mult[o]*float32(acc[o*oh*ow+i]) + qc.add[o]
				idx := (s*qc.oc+o)*oh*ow + i
				if qc.floatOut {
					if qc.relu && v < 0 {
						v = 0
					}
					outF[idx] = v
				} else {
					r := math.RoundToEven(float64(v))
					lo := float64(-QActMax)
					if qc.relu {
						lo = 0
					}
					if r < lo {
						r = lo
					} else if r > QActMax {
						r = QActMax
					}
					outQ[idx] = int8(r)
				}
			}
		}
	}
	return outQ, outF
}

// TestQuantizedConvMatchesIntegerReference drives every execution path of
// QuantizedConv (generic im2col, stride-1 pointwise, strided pointwise,
// int8 and float epilogues, batch > 1) against the naive integer replay.
// Equality is exact: driver and reference perform the same quantized
// arithmetic.
func TestQuantizedConvMatchesIntegerReference(t *testing.T) {
	rng := NewRNG(29)
	cases := []struct {
		name           string
		oc, c, kh, kw  int
		stride, pad    int
		relu, floatOut bool
		n, h, w        int
	}{
		{"conv3x3-pad", 9, 5, 3, 3, 1, 1, true, false, 2, 11, 13},
		{"conv7x7-s2", 16, 5, 7, 7, 2, 3, true, false, 1, 17, 17},
		{"pointwise-s1", 17, 6, 1, 1, 1, 0, false, false, 3, 9, 10},
		{"pointwise-s2", 8, 7, 1, 1, 2, 0, true, false, 2, 12, 12},
		{"fc-floatout", 10, 33, 1, 1, 1, 0, false, true, 4, 1, 1},
		{"conv-floatout", 6, 4, 3, 3, 2, 1, false, true, 1, 8, 8},
		// Degenerate-spatial forwards (1×1 output, receptive field covering
		// the input): the pruned-GEMV fast path against the same oracle.
		{"conv3x3-on-1x1", 13, 7, 3, 3, 1, 1, true, false, 2, 1, 1},
		{"conv3x3-s2-on-2x2", 12, 6, 3, 3, 2, 1, true, false, 3, 2, 2},
		{"conv3x3-on-1x1-floatout", 5, 9, 3, 3, 1, 1, false, true, 2, 1, 1},
		// 1×1 output whose receptive field does NOT cover the input (stride
		// overshoot): must stay on the generic path and still be exact.
		{"conv3x3-s9-on-9x9", 4, 3, 3, 3, 9, 0, false, false, 1, 9, 9},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			weight := RandNormal(rng, 0.3, tc.oc, tc.c, tc.kh, tc.kw)
			bias := RandNormal(rng, 0.1, tc.oc).Data()
			inF := RandNormal(rng, 1.0, tc.n, tc.c, tc.h, tc.w).Data()
			inScale := ActScale(MaxAbs(inF))
			in := make([]int8, len(inF))
			QuantizeInto(in, inF, inScale)

			outScale := float32(0.05)
			if tc.floatOut {
				outScale = 0
			}
			qc := NewQuantizedConv(weight, bias, tc.stride, tc.pad, tc.relu, inScale, outScale)
			wantQ, wantF := qconvRef(qc, in, tc.n, tc.h, tc.w)

			oh, ow := qc.OutSize(tc.h, tc.w)
			size := tc.n * tc.oc * oh * ow
			check := func() {
				if tc.floatOut {
					got := make([]float32, size)
					qc.ForwardInto(nil, got, in, tc.n, tc.h, tc.w)
					for i := range got {
						if got[i] != wantF[i] {
							t.Fatalf("float out[%d] = %v, want %v", i, got[i], wantF[i])
						}
					}
				} else {
					got := make([]int8, size)
					qc.ForwardInto(got, nil, in, tc.n, tc.h, tc.w)
					for i := range got {
						if got[i] != wantQ[i] {
							t.Fatalf("int8 out[%d] = %d, want %d", i, got[i], wantQ[i])
						}
					}
				}
			}
			check()
			prev := parallel.DefaultWorkers
			parallel.DefaultWorkers = 5
			defer func() { parallel.DefaultWorkers = prev }()
			check()
		})
	}
}

// TestQuantizedConvTracksFloatOracle is the accuracy smoke test: the
// dequantized int8 convolution must stay within quantization noise of the
// float PackedConv on well-conditioned random data.
func TestQuantizedConvTracksFloatOracle(t *testing.T) {
	rng := NewRNG(53)
	const n, c, h, w, oc = 2, 5, 14, 14, 12
	weight := RandNormal(rng, 0.25, oc, c, 3, 3)
	bias := RandNormal(rng, 0.1, oc).Data()
	input := RandNormal(rng, 1.0, n, c, h, w)

	pc := NewPackedConv(weight, bias, 1, 1, false)
	oh, ow := pc.OutSize(h, w)
	ref := New(n, oc, oh, ow)
	pc.ForwardInto(ref, input)

	inScale := ActScale(MaxAbs(input.Data()))
	in := make([]int8, input.Dim(0)*c*h*w)
	QuantizeInto(in, input.Data(), inScale)
	outScale := ActScale(MaxAbs(ref.Data()))
	qc := NewQuantizedConv(weight, bias, 1, 1, false, inScale, outScale)
	outQ := make([]int8, n*oc*oh*ow)
	qc.ForwardInto(outQ, nil, in, n, h, w)

	var sumSq, refSq float64
	for i, want := range ref.Data() {
		d := float64(outScale)*float64(outQ[i]) - float64(want)
		sumSq += d * d
		refSq += float64(want) * float64(want)
	}
	rel := math.Sqrt(sumSq / refSq)
	if rel > 0.05 {
		t.Fatalf("relative RMS error vs float oracle = %.4f, want ≤ 0.05", rel)
	}
}

func TestQOpsAgainstFloat(t *testing.T) {
	rng := NewRNG(67)
	const n, c, h, w = 2, 3, 9, 11

	t.Run("maxpool", func(t *testing.T) {
		inF := RandNormal(rng, 1.0, n, c, h, w)
		scale := ActScale(MaxAbs(inF.Data()))
		in := make([]int8, n*c*h*w)
		QuantizeInto(in, inF.Data(), scale)

		oh := ConvOut(h, 3, 2, 1)
		ow := ConvOut(w, 3, 2, 1)
		got := make([]int8, n*c*oh*ow)
		QMaxPool2DInto(got, in, n, c, h, w, 3, 2, 1)

		// Max of quantized values == quantized max (monotone map), so pool
		// the quantized input through the float path and compare exactly.
		qf := New(n, c, h, w)
		for i, q := range in {
			qf.Data()[i] = float32(q)
		}
		want := New(n, c, oh, ow)
		MaxPool2DInto(want, qf, 3, 2, 1)
		for i := range got {
			if float32(got[i]) != want.Data()[i] {
				t.Fatalf("maxpool[%d] = %d, want %v", i, got[i], want.Data()[i])
			}
		}
	})

	t.Run("add", func(t *testing.T) {
		a := randQ8(rand.New(rand.NewSource(5)), 64, QActMax)
		b := randQ8(rand.New(rand.NewSource(6)), 64, QActMax)
		ra, rb := float32(0.6), float32(1.4)
		got := make([]int8, 64)
		QAddInto(got, a, b, ra, rb, true)
		for i := range got {
			v := math.Round(float64(ra*float32(a[i]) + rb*float32(b[i])))
			if v < 0 {
				v = 0
			} else if v > QActMax {
				v = QActMax
			}
			if got[i] != int8(v) {
				t.Fatalf("add[%d] = %d, want %d", i, got[i], int8(v))
			}
		}
	})

	t.Run("gap", func(t *testing.T) {
		in := randQ8(rand.New(rand.NewSource(7)), n*c*h*w, QActMax)
		ratio := float32(0.8)
		gotQ := make([]int8, n*c)
		QGlobalAvgPoolInto(gotQ, in, n, c, h, w, ratio)
		gotF := make([]float32, n*c)
		QGlobalAvgPoolFloatInto(gotF, in, n, c, h, w, 0.01)
		for p := 0; p < n*c; p++ {
			s := int32(0)
			for _, v := range in[p*h*w : (p+1)*h*w] {
				s += int32(v)
			}
			wantQ := math.Round(float64(ratio) * float64(s) / float64(h*w))
			if float64(gotQ[p]) != wantQ {
				t.Fatalf("gapQ[%d] = %d, want %v", p, gotQ[p], wantQ)
			}
			wantF := float32(float64(0.01) * float64(s) / float64(h*w))
			if math.Abs(float64(gotF[p]-wantF)) > 1e-7 {
				t.Fatalf("gapF[%d] = %v, want %v", p, gotF[p], wantF)
			}
		}
	})
}
