package tensor

import (
	"math"
	"testing"
	"testing/quick"
)

// naiveConv2D is a direct reference implementation used to validate the
// im2col path.
func naiveConv2D(input, weight, bias *Tensor, stride, pad int) *Tensor {
	n, c, h, w := input.Dim(0), input.Dim(1), input.Dim(2), input.Dim(3)
	oc, _, kh, kw := weight.Dim(0), weight.Dim(1), weight.Dim(2), weight.Dim(3)
	oh := ConvOut(h, kh, stride, pad)
	ow := ConvOut(w, kw, stride, pad)
	out := New(n, oc, oh, ow)
	for s := 0; s < n; s++ {
		for o := 0; o < oc; o++ {
			for oy := 0; oy < oh; oy++ {
				for ox := 0; ox < ow; ox++ {
					sum := float32(0)
					for ch := 0; ch < c; ch++ {
						for ky := 0; ky < kh; ky++ {
							sy := oy*stride - pad + ky
							if sy < 0 || sy >= h {
								continue
							}
							for kx := 0; kx < kw; kx++ {
								sx := ox*stride - pad + kx
								if sx < 0 || sx >= w {
									continue
								}
								sum += input.At(s, ch, sy, sx) * weight.At(o, ch, ky, kx)
							}
						}
					}
					if bias != nil {
						sum += bias.At(o)
					}
					out.Set(sum, s, o, oy, ox)
				}
			}
		}
	}
	return out
}

func TestConvOut(t *testing.T) {
	cases := []struct{ in, k, s, p, want int }{
		{64, 3, 1, 1, 64},
		{64, 3, 2, 1, 32},
		{64, 7, 2, 3, 32},
		{5, 3, 1, 0, 3},
		{5, 5, 1, 0, 1},
	}
	for _, c := range cases {
		if got := ConvOut(c.in, c.k, c.s, c.p); got != c.want {
			t.Errorf("ConvOut(%d,%d,%d,%d)=%d want %d", c.in, c.k, c.s, c.p, got, c.want)
		}
	}
}

func TestConv2DMatchesNaive(t *testing.T) {
	r := NewRNG(3)
	cases := []struct{ n, c, h, w, oc, k, s, p int }{
		{1, 1, 5, 5, 1, 3, 1, 1},
		{2, 3, 8, 8, 4, 3, 2, 1},
		{3, 2, 9, 7, 5, 3, 1, 0},
		{1, 5, 16, 16, 8, 7, 2, 3},
		{2, 4, 6, 6, 3, 2, 2, 0},
		{2, 3, 8, 8, 6, 1, 1, 0}, // pointwise, stride 1
		{3, 4, 7, 7, 5, 1, 2, 0}, // pointwise, stride 2
		{1, 2, 5, 6, 3, 1, 2, 0}, // pointwise, rectangular, stride 2
	}
	for _, cs := range cases {
		in := RandNormal(r, 1, cs.n, cs.c, cs.h, cs.w)
		wt := RandNormal(r, 0.5, cs.oc, cs.c, cs.k, cs.k)
		b := RandNormal(r, 0.1, cs.oc)
		got := Conv2D(in, wt, b, cs.s, cs.p)
		want := naiveConv2D(in, wt, b, cs.s, cs.p)
		if !got.SameShape(want) {
			t.Fatalf("shape %v want %v", got.Shape(), want.Shape())
		}
		for i := range got.Data() {
			if d := math.Abs(float64(got.Data()[i] - want.Data()[i])); d > 1e-3 {
				t.Fatalf("case %+v elem %d: got %v want %v", cs, i, got.Data()[i], want.Data()[i])
			}
		}
	}
}

func TestConv2DNilBias(t *testing.T) {
	r := NewRNG(4)
	in := RandNormal(r, 1, 1, 2, 4, 4)
	wt := RandNormal(r, 1, 3, 2, 3, 3)
	got := Conv2D(in, wt, nil, 1, 1)
	want := naiveConv2D(in, wt, nil, 1, 1)
	for i := range got.Data() {
		if d := math.Abs(float64(got.Data()[i] - want.Data()[i])); d > 1e-4 {
			t.Fatalf("elem %d: got %v want %v", i, got.Data()[i], want.Data()[i])
		}
	}
}

func TestIm2ColCol2ImAdjoint(t *testing.T) {
	// Property: Col2Im is the adjoint of Im2Col, i.e. <Im2Col(x), y> ==
	// <x, Col2Im(y)> for all x, y. This is the defining property the
	// backward pass relies on.
	f := func(seed uint64) bool {
		r := NewRNG(seed)
		c, h, w, k, s, p := 2, 6, 5, 3, 2, 1
		oh, ow := ConvOut(h, k, s, p), ConvOut(w, k, s, p)
		x := RandNormal(r, 1, c, h, w)
		y := RandNormal(r, 1, c*k*k, oh*ow)
		colX := make([]float32, c*k*k*oh*ow)
		Im2Col(x.Data(), c, h, w, k, k, s, p, colX)
		lhs := 0.0
		for i := range colX {
			lhs += float64(colX[i]) * float64(y.Data()[i])
		}
		back := make([]float32, c*h*w)
		Col2Im(y.Data(), c, h, w, k, k, s, p, back)
		rhs := 0.0
		for i := range back {
			rhs += float64(back[i]) * float64(x.Data()[i])
		}
		return math.Abs(lhs-rhs) < 1e-2*(1+math.Abs(lhs))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

// numericalGrad computes d(sum(conv output * probe))/d(input[i]) by central
// differences.
func numericalGradConvInput(in, wt, probe *Tensor, stride, pad int, idx int) float64 {
	const eps = 1e-2
	orig := in.Data()[idx]
	in.Data()[idx] = orig + eps
	up := dot(Conv2D(in, wt, nil, stride, pad), probe)
	in.Data()[idx] = orig - eps
	down := dot(Conv2D(in, wt, nil, stride, pad), probe)
	in.Data()[idx] = orig
	return (up - down) / (2 * eps)
}

func dot(a, b *Tensor) float64 {
	s := 0.0
	for i := range a.Data() {
		s += float64(a.Data()[i]) * float64(b.Data()[i])
	}
	return s
}

func TestConv2DBackwardNumericalGradient(t *testing.T) {
	r := NewRNG(11)
	n, c, h, w, oc, k, s, p := 2, 3, 6, 6, 4, 3, 2, 1
	in := RandNormal(r, 1, n, c, h, w)
	wt := RandNormal(r, 0.5, oc, c, k, k)
	out := Conv2D(in, wt, nil, s, p)
	probe := RandNormal(r, 1, out.Shape()...)
	gradW := New(oc, c, k, k)
	gradB := New(oc)
	gradIn := Conv2DBackward(in, wt, probe, gradW, gradB, s, p)

	// Spot-check several input gradient entries against finite differences.
	for _, idx := range []int{0, 17, 55, 100, n*c*h*w - 1} {
		want := numericalGradConvInput(in, wt, probe, s, p, idx)
		got := float64(gradIn.Data()[idx])
		if math.Abs(got-want) > 2e-2*(1+math.Abs(want)) {
			t.Fatalf("gradIn[%d]: got %v want %v", idx, got, want)
		}
	}
	// And weight gradients.
	for _, idx := range []int{0, 13, oc*c*k*k - 1} {
		const eps = 1e-2
		orig := wt.Data()[idx]
		wt.Data()[idx] = orig + eps
		up := dot(Conv2D(in, wt, nil, s, p), probe)
		wt.Data()[idx] = orig - eps
		down := dot(Conv2D(in, wt, nil, s, p), probe)
		wt.Data()[idx] = orig
		want := (up - down) / (2 * eps)
		got := float64(gradW.Data()[idx])
		if math.Abs(got-want) > 2e-2*(1+math.Abs(want)) {
			t.Fatalf("gradW[%d]: got %v want %v", idx, got, want)
		}
	}
	// Bias gradient equals the sum of gradOut over each output channel.
	for o := 0; o < oc; o++ {
		want := 0.0
		oh, ow := out.Dim(2), out.Dim(3)
		for s2 := 0; s2 < n; s2++ {
			for y := 0; y < oh; y++ {
				for x := 0; x < ow; x++ {
					want += float64(probe.At(s2, o, y, x))
				}
			}
		}
		if math.Abs(float64(gradB.At(o))-want) > 1e-2*(1+math.Abs(want)) {
			t.Fatalf("gradB[%d]: got %v want %v", o, gradB.At(o), want)
		}
	}
}

func TestConv2DBackwardAccumulates(t *testing.T) {
	r := NewRNG(5)
	in := RandNormal(r, 1, 1, 2, 4, 4)
	wt := RandNormal(r, 1, 2, 2, 3, 3)
	gout := RandNormal(r, 1, 1, 2, 4, 4)
	g1 := New(2, 2, 3, 3)
	Conv2DBackward(in, wt, gout, g1, nil, 1, 1)
	g2 := g1.Clone()
	Conv2DBackward(in, wt, gout, g2, nil, 1, 1)
	for i := range g2.Data() {
		if math.Abs(float64(g2.Data()[i]-2*g1.Data()[i])) > 1e-3 {
			t.Fatal("gradW must accumulate across calls")
		}
	}
}

func TestWorkerSlot(t *testing.T) {
	// workerSlot must invert ForChunked's chunk layout for every range start.
	for _, n := range []int{1, 5, 16, 97} {
		for _, workers := range []int{1, 2, 4, 7} {
			w := workers
			if w > n {
				w = n
			}
			base, extra := n/w, n%w
			lo, slot := 0, 0
			for slot < w {
				size := base
				if slot < extra {
					size++
				}
				if got := workerSlot(lo, n, w); got != slot {
					t.Fatalf("workerSlot(%d,%d,%d)=%d want %d", lo, n, w, got, slot)
				}
				lo += size
				slot++
			}
		}
	}
}

func TestConv2DLinearInWeights(t *testing.T) {
	// Property: conv(x, aW1 + bW2) == a·conv(x, W1) + b·conv(x, W2).
	f := func(seed uint64) bool {
		r := NewRNG(seed)
		x := RandNormal(r, 1, 1, 2, 6, 6)
		w1 := RandNormal(r, 1, 3, 2, 3, 3)
		w2 := RandNormal(r, 1, 3, 2, 3, 3)
		a, b := float32(r.Uniform(-2, 2)), float32(r.Uniform(-2, 2))
		combined := AxpyInPlace(Scale(w1, a), b, w2)
		lhs := Conv2D(x, combined, nil, 1, 1)
		rhs := AxpyInPlace(Scale(Conv2D(x, w1, nil, 1, 1), a), b, Conv2D(x, w2, nil, 1, 1))
		for i := range lhs.Data() {
			if d := lhs.Data()[i] - rhs.Data()[i]; d > 1e-3 || d < -1e-3 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

func TestConv2DTranslationEquivariance(t *testing.T) {
	// Property: shifting the input one pixel right shifts the stride-1
	// convolution output one pixel right (interior pixels).
	r := NewRNG(42)
	x := RandNormal(r, 1, 1, 1, 8, 8)
	shifted := New(1, 1, 8, 8)
	for y := 0; y < 8; y++ {
		for sx := 1; sx < 8; sx++ {
			shifted.Set(x.At(0, 0, y, sx-1), 0, 0, y, sx)
		}
	}
	w := RandNormal(r, 1, 1, 1, 3, 3)
	outA := Conv2D(x, w, nil, 1, 1)
	outB := Conv2D(shifted, w, nil, 1, 1)
	for y := 1; y < 7; y++ {
		for sx := 2; sx < 7; sx++ {
			d := outB.At(0, 0, y, sx) - outA.At(0, 0, y, sx-1)
			if d > 1e-4 || d < -1e-4 {
				t.Fatalf("equivariance broken at (%d,%d): %v", y, sx, d)
			}
		}
	}
}
