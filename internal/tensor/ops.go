package tensor

import (
	"fmt"
	"math"
)

// binaryCheck panics unless a and b share a shape.
func binaryCheck(op string, a, b *Tensor) {
	if !a.SameShape(b) {
		panic(fmt.Sprintf("tensor: %s shape mismatch %v vs %v", op, a.shape, b.shape))
	}
}

// Add returns a + b elementwise.
func Add(a, b *Tensor) *Tensor {
	binaryCheck("Add", a, b)
	out := New(a.shape...)
	forEach(len(a.data), func(lo, hi int) {
		for i := lo; i < hi; i++ {
			out.data[i] = a.data[i] + b.data[i]
		}
	})
	return out
}

// AddInto writes a + b into dst elementwise. dst may alias a or b; all
// three must share a shape. It is the allocation-free variant of Add for
// callers that own their output buffers (compiled inference plans).
func AddInto(dst, a, b *Tensor) {
	binaryCheck("AddInto", a, b)
	binaryCheck("AddInto dst", dst, a)
	// The serial case calls the range body directly: a closure handed to
	// forEach would heap-allocate per call, which the compiled-plan steady
	// state promises not to do. Same pattern in the other *Into ops.
	if n := len(a.data); serialRange(n) {
		addRange(dst.data, a.data, b.data, 0, n)
	} else {
		forEach(n, func(lo, hi int) { addRange(dst.data, a.data, b.data, lo, hi) })
	}
}

func addRange(dst, a, b []float32, lo, hi int) {
	for i := lo; i < hi; i++ {
		dst[i] = a[i] + b[i]
	}
}

// AddReLUInto writes max(a + b, 0) into dst elementwise — the fused
// residual-join epilogue (Add followed by ReLU) done in one pass. dst may
// alias a or b.
func AddReLUInto(dst, a, b *Tensor) {
	binaryCheck("AddReLUInto", a, b)
	binaryCheck("AddReLUInto dst", dst, a)
	if n := len(a.data); serialRange(n) {
		addReLURange(dst.data, a.data, b.data, 0, n)
	} else {
		forEach(n, func(lo, hi int) { addReLURange(dst.data, a.data, b.data, lo, hi) })
	}
}

func addReLURange(dst, a, b []float32, lo, hi int) {
	for i := lo; i < hi; i++ {
		v := a[i] + b[i]
		if v < 0 {
			v = 0
		}
		dst[i] = v
	}
}

// ReLUInto writes max(a, 0) into dst elementwise. dst may alias a.
func ReLUInto(dst, a *Tensor) {
	binaryCheck("ReLUInto", dst, a)
	if n := len(a.data); serialRange(n) {
		reLURange(dst.data, a.data, 0, n)
	} else {
		forEach(n, func(lo, hi int) { reLURange(dst.data, a.data, lo, hi) })
	}
}

func reLURange(dst, a []float32, lo, hi int) {
	for i := lo; i < hi; i++ {
		v := a[i]
		if v < 0 {
			v = 0
		}
		dst[i] = v
	}
}

// AddInPlace accumulates b into a and returns a.
func AddInPlace(a, b *Tensor) *Tensor {
	binaryCheck("AddInPlace", a, b)
	forEach(len(a.data), func(lo, hi int) {
		for i := lo; i < hi; i++ {
			a.data[i] += b.data[i]
		}
	})
	return a
}

// Sub returns a - b elementwise.
func Sub(a, b *Tensor) *Tensor {
	binaryCheck("Sub", a, b)
	out := New(a.shape...)
	forEach(len(a.data), func(lo, hi int) {
		for i := lo; i < hi; i++ {
			out.data[i] = a.data[i] - b.data[i]
		}
	})
	return out
}

// Mul returns a * b elementwise (Hadamard product).
func Mul(a, b *Tensor) *Tensor {
	binaryCheck("Mul", a, b)
	out := New(a.shape...)
	forEach(len(a.data), func(lo, hi int) {
		for i := lo; i < hi; i++ {
			out.data[i] = a.data[i] * b.data[i]
		}
	})
	return out
}

// Scale returns s * a.
func Scale(a *Tensor, s float32) *Tensor {
	out := New(a.shape...)
	forEach(len(a.data), func(lo, hi int) {
		for i := lo; i < hi; i++ {
			out.data[i] = a.data[i] * s
		}
	})
	return out
}

// ScaleInPlace multiplies a by s in place and returns a.
func ScaleInPlace(a *Tensor, s float32) *Tensor {
	forEach(len(a.data), func(lo, hi int) {
		for i := lo; i < hi; i++ {
			a.data[i] *= s
		}
	})
	return a
}

// AxpyInPlace computes a += alpha*b in place (the BLAS axpy) and returns a.
func AxpyInPlace(a *Tensor, alpha float32, b *Tensor) *Tensor {
	binaryCheck("AxpyInPlace", a, b)
	forEach(len(a.data), func(lo, hi int) {
		for i := lo; i < hi; i++ {
			a.data[i] += alpha * b.data[i]
		}
	})
	return a
}

// Apply returns f applied elementwise.
func Apply(a *Tensor, f func(float32) float32) *Tensor {
	out := New(a.shape...)
	forEach(len(a.data), func(lo, hi int) {
		for i := lo; i < hi; i++ {
			out.data[i] = f(a.data[i])
		}
	})
	return out
}

// ReLU returns max(x, 0) elementwise.
func ReLU(a *Tensor) *Tensor {
	out := New(a.shape...)
	forEach(len(a.data), func(lo, hi int) {
		for i := lo; i < hi; i++ {
			if v := a.data[i]; v > 0 {
				out.data[i] = v
			}
		}
	})
	return out
}

// ReLUBackward returns grad masked by (input > 0): the gradient of ReLU.
func ReLUBackward(grad, input *Tensor) *Tensor {
	binaryCheck("ReLUBackward", grad, input)
	out := New(grad.shape...)
	forEach(len(grad.data), func(lo, hi int) {
		for i := lo; i < hi; i++ {
			if input.data[i] > 0 {
				out.data[i] = grad.data[i]
			}
		}
	})
	return out
}

// Sum returns the sum of all elements as float64 for numeric stability.
func (t *Tensor) Sum() float64 {
	s := 0.0
	for _, v := range t.data {
		s += float64(v)
	}
	return s
}

// Mean returns the arithmetic mean of all elements.
func (t *Tensor) Mean() float64 {
	if len(t.data) == 0 {
		return 0
	}
	return t.Sum() / float64(len(t.data))
}

// Max returns the maximum element. It panics on an empty tensor.
func (t *Tensor) Max() float32 {
	m := t.data[0]
	for _, v := range t.data[1:] {
		if v > m {
			m = v
		}
	}
	return m
}

// Min returns the minimum element. It panics on an empty tensor.
func (t *Tensor) Min() float32 {
	m := t.data[0]
	for _, v := range t.data[1:] {
		if v < m {
			m = v
		}
	}
	return m
}

// Norm2 returns the Euclidean norm of the flattened tensor.
func (t *Tensor) Norm2() float64 {
	s := 0.0
	for _, v := range t.data {
		s += float64(v) * float64(v)
	}
	return math.Sqrt(s)
}

// ArgMaxRows treats t as a (rows, cols) matrix and returns the column index
// of the maximum in each row — the predicted class per sample.
func ArgMaxRows(t *Tensor) []int {
	if t.NDim() != 2 {
		panic(fmt.Sprintf("tensor: ArgMaxRows wants a 2-D tensor, got shape %v", t.shape))
	}
	rows, cols := t.shape[0], t.shape[1]
	out := make([]int, rows)
	for r := 0; r < rows; r++ {
		row := t.data[r*cols : (r+1)*cols]
		best := 0
		for c := 1; c < cols; c++ {
			if row[c] > row[best] {
				best = c
			}
		}
		out[r] = best
	}
	return out
}

// SoftmaxRows treats t as (rows, cols) and returns row-wise softmax,
// computed with the max-subtraction trick for stability.
func SoftmaxRows(t *Tensor) *Tensor {
	if t.NDim() != 2 {
		panic(fmt.Sprintf("tensor: SoftmaxRows wants a 2-D tensor, got shape %v", t.shape))
	}
	rows, cols := t.shape[0], t.shape[1]
	out := New(rows, cols)
	forEach(rows, func(lo, hi int) {
		for r := lo; r < hi; r++ {
			row := t.data[r*cols : (r+1)*cols]
			dst := out.data[r*cols : (r+1)*cols]
			m := row[0]
			for _, v := range row[1:] {
				if v > m {
					m = v
				}
			}
			sum := 0.0
			for c, v := range row {
				e := math.Exp(float64(v - m))
				dst[c] = float32(e)
				sum += e
			}
			inv := float32(1.0 / sum)
			for c := range dst {
				dst[c] *= inv
			}
		}
	})
	return out
}
