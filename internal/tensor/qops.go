package tensor

import (
	"fmt"
	"math"
)

// Int8 elementwise and pooling ops for quantized inference plans. All of
// them work on flat s8 buffers (zero-point 0) with explicit dims, because
// the quantized arena stores raw slabs rather than *Tensor values.

// QAddInto writes dst[i] = clamp(round(ra·a[i] + rb·b[i])), optionally
// clamped below at 0 (fused ReLU). ra and rb are the precomputed scale
// ratios sa/so and sb/so that re-express both addends on the output scale —
// the residual Add of a quantized plan, where the two branches generally
// carry different activation scales. dst may alias a or b.
func QAddInto(dst, a, b []int8, ra, rb float32, relu bool) {
	if len(a) != len(b) || len(dst) != len(a) {
		panic(fmt.Sprintf("tensor: QAddInto length mismatch %d %d %d", len(dst), len(a), len(b)))
	}
	lo := float64(-QActMax)
	if relu {
		lo = 0
	}
	for i := range dst {
		v := math.RoundToEven(float64(ra*float32(a[i]) + rb*float32(b[i])))
		if v < lo {
			v = lo
		} else if v > QActMax {
			v = QActMax
		}
		dst[i] = int8(v)
	}
}

// QReLUInto writes dst[i] = max(0, src[i]). With zero-point-0 activations a
// standalone quantized ReLU is a plain clamp and preserves the scale.
func QReLUInto(dst, src []int8) {
	if len(dst) != len(src) {
		panic(fmt.Sprintf("tensor: QReLUInto length mismatch %d vs %d", len(dst), len(src)))
	}
	for i, v := range src {
		if v < 0 {
			v = 0
		}
		dst[i] = v
	}
}

// QMaxPool2DInto pools the s8 (N, C, H, W) input into the (N, C, OH, OW)
// output with the float MaxPool2DInto semantics: padding taps are excluded
// from the max, and a window with no valid taps yields 0. Quantization is
// monotone, so pooling the s8 values directly matches pooling in float and
// the op needs no rescaling — input and output share a scale.
func QMaxPool2DInto(out, in []int8, n, c, h, w, kernel, stride, pad int) {
	oh := ConvOut(h, kernel, stride, pad)
	ow := ConvOut(w, kernel, stride, pad)
	if oh <= 0 || ow <= 0 {
		panic(fmt.Sprintf("tensor: QMaxPool2DInto produces empty output for input %dx%d k=%d s=%d p=%d", h, w, kernel, stride, pad))
	}
	if len(in) != n*c*h*w || len(out) != n*c*oh*ow {
		panic(fmt.Sprintf("tensor: QMaxPool2DInto buffer lengths %d/%d, want %d/%d", len(in), len(out), n*c*h*w, n*c*oh*ow))
	}
	for p := 0; p < n*c; p++ {
		plane := in[p*h*w : (p+1)*h*w]
		dst := out[p*oh*ow : (p+1)*oh*ow]
		i := 0
		for oy := 0; oy < oh; oy++ {
			// Valid tap rows for this output row, hoisted so the window
			// loops below run without per-tap bounds tests.
			syLo := oy*stride - pad
			syHi := syLo + kernel
			if syLo < 0 {
				syLo = 0
			}
			if syHi > h {
				syHi = h
			}
			for ox := 0; ox < ow; ox++ {
				sxLo := ox*stride - pad
				sxHi := sxLo + kernel
				if sxLo < 0 {
					sxLo = 0
				}
				if sxHi > w {
					sxHi = w
				}
				if syLo >= syHi || sxLo >= sxHi {
					dst[i] = 0 // window fully in padding
					i++
					continue
				}
				best := plane[syLo*w+sxLo]
				for sy := syLo; sy < syHi; sy++ {
					for _, v := range plane[sy*w+sxLo : sy*w+sxHi] {
						if v > best {
							best = v
						}
					}
				}
				dst[i] = best
				i++
			}
		}
	}
}

// QGlobalAvgPoolInto averages each s8 (H, W) plane into one int8 output
// value on a new scale: dst[p] = clamp(round(ratio·mean(plane p))) with
// ratio = inScale/outScale. The int32 plane sum is exact (H·W·127 is far
// inside int32 for any plan shape).
func QGlobalAvgPoolInto(dst, src []int8, n, c, h, w int, ratio float32) {
	if len(src) != n*c*h*w || len(dst) != n*c {
		panic(fmt.Sprintf("tensor: QGlobalAvgPoolInto buffer lengths %d/%d, want %d/%d", len(src), len(dst), n*c*h*w, n*c))
	}
	inv := float64(ratio) / float64(h*w)
	for p := 0; p < n*c; p++ {
		plane := src[p*h*w : (p+1)*h*w]
		s := int32(0)
		for _, v := range plane {
			s += int32(v)
		}
		v := math.RoundToEven(float64(s) * inv)
		if v < -QActMax {
			v = -QActMax
		} else if v > QActMax {
			v = QActMax
		}
		dst[p] = int8(v)
	}
}

// QGlobalAvgPoolFloatInto averages each s8 (H, W) plane into a float32
// output — the dequantizing variant for plans whose terminal op is the
// global pool itself. scale is the input activation scale.
func QGlobalAvgPoolFloatInto(dst []float32, src []int8, n, c, h, w int, scale float32) {
	if len(src) != n*c*h*w || len(dst) != n*c {
		panic(fmt.Sprintf("tensor: QGlobalAvgPoolFloatInto buffer lengths %d/%d, want %d/%d", len(src), len(dst), n*c*h*w, n*c))
	}
	inv := float64(sanitizeScale(scale)) / float64(h*w)
	for p := 0; p < n*c; p++ {
		plane := src[p*h*w : (p+1)*h*w]
		s := int32(0)
		for _, v := range plane {
			s += int32(v)
		}
		dst[p] = float32(float64(s) * inv)
	}
}
