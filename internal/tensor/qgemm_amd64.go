//go:build amd64

package tensor

// AVX2 int8 micro-kernel selection. The assembly kernel (qgemm_amd64.s)
// computes a 4×16 int32 tile via the VPMADDUBSW → VPMADDWD(ones) → VPADDD
// chain: eight YMM accumulators, two YMM loads of the packed B quad row and
// four broadcast dword loads of the packed A weight quads per k-quad — 30
// instructions for 256 multiply-adds, against the float kernel's 20 for 96.
// It shares the float kernel's feature gate: VPMADDUBSW's 256-bit form is
// AVX2, and the OS-state checks are identical.

// qgemmKernel4x16 computes cbuf (4×16 int32, contiguous) = the product of a
// packed s8 weight row-tile and a packed u8 activation panel over kq
// k-quads.
//
//go:noescape
func qgemmKernel4x16(a *int8, b *uint8, cbuf *int32, kq int)

func init() {
	if !cpuHasAVX2FMA() {
		return
	}
	qKernel = qkernelAVX2
	qKernelName = "avx2-4x16"
}

func qkernelAVX2(a []int8, b []uint8, cbuf []int32, kq int) {
	if kq == 0 {
		for i := range cbuf[:qMR*qNR] {
			cbuf[i] = 0
		}
		return
	}
	qgemmKernel4x16(&a[0], &b[0], &cbuf[0], kq)
}
