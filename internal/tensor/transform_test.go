package tensor

import (
	"testing"
	"testing/quick"
)

func seq4(n, c, h, w int) *Tensor {
	t := New(n, c, h, w)
	for i := range t.Data() {
		t.Data()[i] = float32(i)
	}
	return t
}

func TestFlipHKnown(t *testing.T) {
	x := FromSlice([]float32{1, 2, 3, 4, 5, 6}, 1, 1, 2, 3)
	y := FlipH(x)
	want := []float32{3, 2, 1, 6, 5, 4}
	for i, v := range y.Data() {
		if v != want[i] {
			t.Fatalf("FlipH=%v", y.Data())
		}
	}
}

func TestFlipVKnown(t *testing.T) {
	x := FromSlice([]float32{1, 2, 3, 4, 5, 6}, 1, 1, 2, 3)
	y := FlipV(x)
	want := []float32{4, 5, 6, 1, 2, 3}
	for i, v := range y.Data() {
		if v != want[i] {
			t.Fatalf("FlipV=%v", y.Data())
		}
	}
}

func TestRot90Known(t *testing.T) {
	// 2x2 plane [[1,2],[3,4]] rotated CCW once → [[2,4],[1,3]].
	x := FromSlice([]float32{1, 2, 3, 4}, 1, 1, 2, 2)
	y := Rot90(x, 1)
	want := []float32{2, 4, 1, 3}
	for i, v := range y.Data() {
		if v != want[i] {
			t.Fatalf("Rot90(1)=%v want %v", y.Data(), want)
		}
	}
	// CW once (k=3) → [[3,1],[4,2]].
	z := Rot90(x, 3)
	wantZ := []float32{3, 1, 4, 2}
	for i, v := range z.Data() {
		if v != wantZ[i] {
			t.Fatalf("Rot90(3)=%v want %v", z.Data(), wantZ)
		}
	}
}

func TestFlipInvolutions(t *testing.T) {
	// Property: flips are involutions; Rot90 four times is identity.
	f := func(seed uint64) bool {
		rng := NewRNG(seed)
		x := RandNormal(rng, 1, 2, 3, 5, 5)
		checks := []*Tensor{
			FlipH(FlipH(x)),
			FlipV(FlipV(x)),
			Rot90(Rot90(Rot90(Rot90(x, 1), 1), 1), 1),
			Rot90(Rot90(x, 1), 3),
			Rot90(x, 4),
			Rot90(x, 0),
		}
		for _, y := range checks {
			for i := range x.Data() {
				if x.Data()[i] != y.Data()[i] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

func TestRot90EqualsFlipComposition(t *testing.T) {
	rng := NewRNG(3)
	x := RandNormal(rng, 1, 1, 2, 4, 4)
	// k=2 equals FlipH∘FlipV.
	a := Rot90(x, 2)
	b := FlipH(FlipV(x))
	for i := range a.Data() {
		if a.Data()[i] != b.Data()[i] {
			t.Fatal("Rot90(2) != FlipH(FlipV)")
		}
	}
}

func TestRot90RejectsNonSquareOdd(t *testing.T) {
	x := seq4(1, 1, 2, 3)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for odd rotation of non-square plane")
		}
	}()
	Rot90(x, 1)
}

func TestRot90NonSquareEvenOK(t *testing.T) {
	x := seq4(1, 1, 2, 3)
	y := Rot90(x, 2)
	want := []float32{5, 4, 3, 2, 1, 0}
	for i, v := range y.Data() {
		if v != want[i] {
			t.Fatalf("Rot90(2) non-square=%v", y.Data())
		}
	}
}

func TestAddNoiseInPlace(t *testing.T) {
	x := New(1, 1, 10, 10)
	AddNoiseInPlace(x, NewRNG(1), 0.5)
	nonzero := 0
	for _, v := range x.Data() {
		if v != 0 {
			nonzero++
		}
	}
	if nonzero < 90 {
		t.Fatalf("noise barely applied: %d nonzero", nonzero)
	}
}

func TestTransformsPreserveBatchChannelStructure(t *testing.T) {
	// A transform must act per-plane: plane p of the output must be a
	// permutation of plane p of the input.
	rng := NewRNG(9)
	x := RandNormal(rng, 1, 3, 2, 4, 4)
	for name, y := range map[string]*Tensor{
		"FlipH": FlipH(x), "FlipV": FlipV(x), "Rot90": Rot90(x, 1),
	} {
		for p := 0; p < 6; p++ {
			var sx, sy float64
			for i := 0; i < 16; i++ {
				sx += float64(x.Data()[p*16+i])
				sy += float64(y.Data()[p*16+i])
			}
			if diff := sx - sy; diff > 1e-4 || diff < -1e-4 {
				t.Fatalf("%s mixed planes: plane %d sums %v vs %v", name, p, sx, sy)
			}
		}
	}
}

func TestResizeBilinearIdentity(t *testing.T) {
	r := NewRNG(13)
	x := RandNormal(r, 1, 2, 2, 6, 6)
	y := ResizeBilinear(x, 6, 6)
	for i := range x.Data() {
		if x.Data()[i] != y.Data()[i] {
			t.Fatal("identity resize changed values")
		}
	}
}

func TestResizeBilinearConstantField(t *testing.T) {
	// Property: resizing a constant image yields the same constant.
	f := func(seed uint64) bool {
		r := NewRNG(seed)
		v := float32(r.Uniform(-5, 5))
		x := Full(v, 1, 1, 7, 5)
		for _, dims := range [][2]int{{3, 3}, {14, 10}, {5, 9}} {
			y := ResizeBilinear(x, dims[0], dims[1])
			for _, got := range y.Data() {
				if d := got - v; d > 1e-5 || d < -1e-5 {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

func TestResizeBilinearDownUpBounds(t *testing.T) {
	// Bilinear interpolation never exceeds the input's value range.
	r := NewRNG(14)
	x := RandUniform(r, -1, 1, 1, 3, 16, 16)
	lo, hi := x.Min(), x.Max()
	for _, dims := range [][2]int{{8, 8}, {32, 32}, {11, 23}} {
		y := ResizeBilinear(x, dims[0], dims[1])
		if y.Min() < lo-1e-5 || y.Max() > hi+1e-5 {
			t.Fatalf("resize to %v escaped range: [%v,%v] vs [%v,%v]",
				dims, y.Min(), y.Max(), lo, hi)
		}
		if y.Dim(2) != dims[0] || y.Dim(3) != dims[1] {
			t.Fatalf("shape %v", y.Shape())
		}
	}
}

func TestResizeBilinearMeanPreservedOnDownscale(t *testing.T) {
	// Halving resolution approximately preserves the image mean.
	r := NewRNG(15)
	x := RandUniform(r, 0, 1, 1, 1, 32, 32)
	y := ResizeBilinear(x, 16, 16)
	if d := x.Mean() - y.Mean(); d > 0.02 || d < -0.02 {
		t.Fatalf("mean drifted by %v", d)
	}
}

func TestResizeBilinearPanicsOnBadDims(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	ResizeBilinear(New(1, 1, 4, 4), 0, 4)
}
