package tensor

import (
	"math"
	"sync"
	"testing"

	"drainnas/internal/parallel"
)

// convCase is a forward/backward shape the kernel suite runs. The set
// covers strided, padded, pointwise (stride 1 and 2) and odd spatial sizes.
type convCase struct {
	n, c, h, w  int
	oc, kh, kw  int
	stride, pad int
	bias        bool
	name        string
}

var convCases = []convCase{
	{1, 3, 17, 17, 8, 3, 3, 1, 1, true, "batch1-3x3"},
	{1, 16, 32, 32, 32, 3, 3, 1, 1, false, "batch1-wide"},
	{2, 5, 13, 9, 7, 5, 5, 2, 2, true, "stride2-5x5"},
	{3, 8, 16, 16, 16, 1, 1, 1, 0, false, "pointwise-s1"},
	{1, 8, 15, 15, 12, 1, 1, 2, 0, true, "pointwise-s2"},
	{4, 2, 7, 7, 3, 3, 3, 3, 0, false, "stride3-nopad"},
	{1, 4, 5, 31, 6, 3, 3, 1, 1, true, "short-wide"},
}

// forwardOracle computes Conv2D with a single worker and no row chunking,
// i.e. the sequential im2col→matmul reference.
func forwardOracle(tc convCase, input, weight, bias *Tensor) *Tensor {
	prev := parallel.DefaultWorkers
	parallel.DefaultWorkers = 1
	defer func() { parallel.DefaultWorkers = prev }()
	return Conv2D(input, weight, bias, tc.stride, tc.pad)
}

func makeConvInputs(tc convCase, seed uint64) (input, weight, bias *Tensor) {
	rng := NewRNG(seed)
	input = RandNormal(rng, 1, tc.n, tc.c, tc.h, tc.w)
	weight = RandNormal(rng, 0.3, tc.oc, tc.c, tc.kh, tc.kw)
	if tc.bias {
		bias = RandNormal(rng, 0.5, tc.oc)
	}
	return
}

// TestConv2DIntraSampleParity forces more workers than samples so every
// sample is split into output-row chunks, and checks the chunked result
// against the sequential one. Under the scalar kernel the match must be
// bitwise (identical multiply-add sequence in identical k order); under an
// FMA kernel a chunk can land on the other side of the naive/tiled cutoff,
// so the comparison allows the blended FMA tolerance.
func TestConv2DIntraSampleParity(t *testing.T) {
	run := func(t *testing.T) {
		for _, workers := range []int{2, 3, 5, 16} {
			for _, tc := range convCases {
				input, weight, bias := makeConvInputs(tc, 23)
				want := forwardOracle(tc, input, weight, bias)
				prev := parallel.DefaultWorkers
				parallel.DefaultWorkers = workers
				got := Conv2D(input, weight, bias, tc.stride, tc.pad)
				parallel.DefaultWorkers = prev
				if !got.SameShape(want) {
					t.Fatalf("%s w=%d: shape %v vs %v", tc.name, workers, got.Shape(), want.Shape())
				}
				tol := parityTol(tc.c*tc.kh*tc.kw, false)
				if d := maxKernelDiff(got, want); d > tol {
					t.Fatalf("%s w=%d kernel=%s: max blended diff %g > %g", tc.name, workers, gemmKernelName, d, tol)
				}
			}
		}
	}
	t.Run("active-kernel", run)
	t.Run("scalar-kernel", func(t *testing.T) {
		restore := forceScalarKernel()
		defer restore()
		run(t)
	})
}

// TestConv2DIntraSampleRace runs chunked batch-1 convolutions concurrently
// with forced multi-worker grids; `go test -race ./internal/tensor` turns
// this into the data-race check for the intra-sample path (worker fan-out
// happens regardless of the host's core count).
func TestConv2DIntraSampleRace(t *testing.T) {
	prev := parallel.DefaultWorkers
	parallel.DefaultWorkers = 8
	defer func() { parallel.DefaultWorkers = prev }()
	tc := convCases[1] // batch1-wide: big enough that chunks hit the tiled path
	input, weight, bias := makeConvInputs(tc, 31)
	want := Conv2D(input, weight, bias, tc.stride, tc.pad)
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 3; i++ {
				got := Conv2D(input, weight, bias, tc.stride, tc.pad)
				for j := range want.data {
					if got.data[j] != want.data[j] {
						t.Errorf("concurrent conv diverged at %d", j)
						return
					}
				}
			}
		}()
	}
	wg.Wait()
}

// TestConv2DBackwardPooledParity compares pooled-buffer backward against
// fresh-allocation backward. The pool is poisoned with NaN-filled buffers
// first, so any element the pooled path fails to overwrite or zero shows up
// as a NaN diff, not a silent match on stale zeros.
func TestConv2DBackwardPooledParity(t *testing.T) {
	nan := float32(math.NaN())
	for _, tc := range convCases {
		input, weight, _ := makeConvInputs(tc, 41)
		ohh := ConvOut(tc.h, tc.kh, tc.stride, tc.pad)
		oww := ConvOut(tc.w, tc.kw, tc.stride, tc.pad)
		rng := NewRNG(43)
		gradOut := RandNormal(rng, 1, tc.n, tc.oc, ohh, oww)

		run := func() (gin, gw, gb *Tensor) {
			gw = New(tc.oc, tc.c, tc.kh, tc.kw)
			gb = New(tc.oc)
			gin = Conv2DBackward(input, weight, gradOut, gw, gb, tc.stride, tc.pad)
			return
		}

		restore := disableScratchPool()
		wantIn, wantW, wantB := run()
		restore()

		// Poison: push NaN buffers of the sizes backward will request.
		kdim := tc.c * tc.kh * tc.kw
		for _, sz := range []int{tc.oc * kdim, tc.oc, kdim * ohh * oww} {
			buf := getScratch(sz)
			for i := range buf {
				buf[i] = nan
			}
			putScratch(buf)
		}
		gotIn, gotW, gotB := run()

		for name, pair := range map[string][2]*Tensor{
			"gradIn": {gotIn, wantIn}, "gradW": {gotW, wantW}, "gradB": {gotB, wantB},
		} {
			got, want := pair[0], pair[1]
			for i := range want.data {
				if got.data[i] != want.data[i] {
					t.Fatalf("%s: pooled %s[%d] = %g, fresh = %g", tc.name, name, i, got.data[i], want.data[i])
				}
			}
		}
	}
}

// TestConv2DBackwardConcurrent exercises the pooled backward path under
// concurrent training steps (the NAS runner trains multiple trials at
// once); with -race this checks the pool handoff.
func TestConv2DBackwardConcurrent(t *testing.T) {
	prev := parallel.DefaultWorkers
	parallel.DefaultWorkers = 4
	defer func() { parallel.DefaultWorkers = prev }()
	tc := convCases[0]
	input, weight, _ := makeConvInputs(tc, 53)
	ohh := ConvOut(tc.h, tc.kh, tc.stride, tc.pad)
	oww := ConvOut(tc.w, tc.kw, tc.stride, tc.pad)
	rng := NewRNG(59)
	gradOut := RandNormal(rng, 1, tc.n, tc.oc, ohh, oww)
	gwWant := New(tc.oc, tc.c, tc.kh, tc.kw)
	wantIn := Conv2DBackward(input, weight, gradOut, gwWant, nil, tc.stride, tc.pad)
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 2; i++ {
				gw := New(tc.oc, tc.c, tc.kh, tc.kw)
				gin := Conv2DBackward(input, weight, gradOut, gw, nil, tc.stride, tc.pad)
				for j := range wantIn.data {
					if gin.data[j] != wantIn.data[j] {
						t.Errorf("concurrent backward diverged at %d", j)
						return
					}
				}
				for j := range gwWant.data {
					if gw.data[j] != gwWant.data[j] {
						t.Errorf("concurrent gradW diverged at %d", j)
						return
					}
				}
			}
		}()
	}
	wg.Wait()
}
