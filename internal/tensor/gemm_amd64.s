//go:build amd64

#include "textflag.h"

// func gemmKernel6x16(a, b, cbuf *float32, kc, acc int)
//
// 6×16 float32 micro-kernel: Y0..Y11 hold the accumulator tile (row r in
// Y(2r), Y(2r+1)), Y12/Y13 hold the current packed-B row, Y14 the broadcast
// packed-A element. Operands are packed k-major (A: 6 floats per step,
// B: 16 floats per step), so every load is contiguous and the loop has no
// address arithmetic beyond two pointer bumps.
TEXT ·gemmKernel6x16(SB), NOSPLIT, $0-40
	MOVQ a+0(FP), SI
	MOVQ b+8(FP), DI
	MOVQ cbuf+16(FP), DX
	MOVQ kc+24(FP), CX
	MOVQ acc+32(FP), AX

	TESTQ AX, AX
	JZ   zero

	// Resume a tile mid k-block loop: load the 6×16 accumulators.
	VMOVUPS (DX), Y0
	VMOVUPS 32(DX), Y1
	VMOVUPS 64(DX), Y2
	VMOVUPS 96(DX), Y3
	VMOVUPS 128(DX), Y4
	VMOVUPS 160(DX), Y5
	VMOVUPS 192(DX), Y6
	VMOVUPS 224(DX), Y7
	VMOVUPS 256(DX), Y8
	VMOVUPS 288(DX), Y9
	VMOVUPS 320(DX), Y10
	VMOVUPS 352(DX), Y11
	JMP  body

zero:
	VXORPS Y0, Y0, Y0
	VXORPS Y1, Y1, Y1
	VXORPS Y2, Y2, Y2
	VXORPS Y3, Y3, Y3
	VXORPS Y4, Y4, Y4
	VXORPS Y5, Y5, Y5
	VXORPS Y6, Y6, Y6
	VXORPS Y7, Y7, Y7
	VXORPS Y8, Y8, Y8
	VXORPS Y9, Y9, Y9
	VXORPS Y10, Y10, Y10
	VXORPS Y11, Y11, Y11

body:
	TESTQ CX, CX
	JZ   done

loop:
	VMOVUPS (DI), Y12
	VMOVUPS 32(DI), Y13

	VBROADCASTSS (SI), Y14
	VFMADD231PS Y12, Y14, Y0
	VFMADD231PS Y13, Y14, Y1
	VBROADCASTSS 4(SI), Y14
	VFMADD231PS Y12, Y14, Y2
	VFMADD231PS Y13, Y14, Y3
	VBROADCASTSS 8(SI), Y14
	VFMADD231PS Y12, Y14, Y4
	VFMADD231PS Y13, Y14, Y5
	VBROADCASTSS 12(SI), Y14
	VFMADD231PS Y12, Y14, Y6
	VFMADD231PS Y13, Y14, Y7
	VBROADCASTSS 16(SI), Y14
	VFMADD231PS Y12, Y14, Y8
	VFMADD231PS Y13, Y14, Y9
	VBROADCASTSS 20(SI), Y14
	VFMADD231PS Y12, Y14, Y10
	VFMADD231PS Y13, Y14, Y11

	ADDQ $24, SI
	ADDQ $64, DI
	DECQ CX
	JNZ  loop

done:
	VMOVUPS Y0, (DX)
	VMOVUPS Y1, 32(DX)
	VMOVUPS Y2, 64(DX)
	VMOVUPS Y3, 96(DX)
	VMOVUPS Y4, 128(DX)
	VMOVUPS Y5, 160(DX)
	VMOVUPS Y6, 192(DX)
	VMOVUPS Y7, 224(DX)
	VMOVUPS Y8, 256(DX)
	VMOVUPS Y9, 288(DX)
	VMOVUPS Y10, 320(DX)
	VMOVUPS Y11, 352(DX)
	VZEROUPPER
	RET

// func cpuidex(leaf, sub uint32) (eax, ebx, ecx, edx uint32)
TEXT ·cpuidex(SB), NOSPLIT, $0-24
	MOVL leaf+0(FP), AX
	MOVL sub+4(FP), CX
	CPUID
	MOVL AX, eax+8(FP)
	MOVL BX, ebx+12(FP)
	MOVL CX, ecx+16(FP)
	MOVL DX, edx+20(FP)
	RET

// func xgetbv0() (eax, edx uint32)
TEXT ·xgetbv0(SB), NOSPLIT, $0-8
	XORL CX, CX
	XGETBV
	MOVL AX, eax+0(FP)
	MOVL DX, edx+4(FP)
	RET
