package tensor

import (
	"math"
	"testing"
	"testing/quick"
)

func TestNewAndShape(t *testing.T) {
	a := New(2, 3, 4)
	if a.Numel() != 24 || a.NDim() != 3 || a.Dim(1) != 3 {
		t.Fatalf("unexpected tensor geometry: %v", a.Shape())
	}
	for _, v := range a.Data() {
		if v != 0 {
			t.Fatal("New must zero-fill")
		}
	}
}

func TestScalarTensor(t *testing.T) {
	s := New()
	if s.Numel() != 1 || s.NDim() != 0 {
		t.Fatalf("scalar tensor: numel=%d ndim=%d", s.Numel(), s.NDim())
	}
}

func TestAtSetRoundTrip(t *testing.T) {
	a := New(3, 4)
	a.Set(7.5, 2, 1)
	if a.At(2, 1) != 7.5 {
		t.Fatal("At/Set round trip failed")
	}
	if a.Data()[2*4+1] != 7.5 {
		t.Fatal("row-major layout violated")
	}
}

func TestReshapeSharesData(t *testing.T) {
	a := FromSlice([]float32{1, 2, 3, 4, 5, 6}, 2, 3)
	b := a.Reshape(3, 2)
	b.Set(99, 0, 0)
	if a.At(0, 0) != 99 {
		t.Fatal("Reshape must share backing data")
	}
	c := a.Reshape(-1, 2)
	if c.Dim(0) != 3 {
		t.Fatalf("inferred dim = %d, want 3", c.Dim(0))
	}
}

func TestReshapePanicsOnMismatch(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	New(2, 3).Reshape(4, 2)
}

func TestElementwiseOps(t *testing.T) {
	a := FromSlice([]float32{1, 2, 3, 4}, 2, 2)
	b := FromSlice([]float32{10, 20, 30, 40}, 2, 2)
	if got := Add(a, b).Data(); got[3] != 44 {
		t.Fatalf("Add: %v", got)
	}
	if got := Sub(b, a).Data(); got[0] != 9 {
		t.Fatalf("Sub: %v", got)
	}
	if got := Mul(a, b).Data(); got[2] != 90 {
		t.Fatalf("Mul: %v", got)
	}
	if got := Scale(a, 2).Data(); got[1] != 4 {
		t.Fatalf("Scale: %v", got)
	}
	AxpyInPlace(a, 0.5, b)
	if a.Data()[0] != 6 {
		t.Fatalf("Axpy: %v", a.Data())
	}
}

func TestReLUAndBackward(t *testing.T) {
	x := FromSlice([]float32{-1, 0, 2, -3}, 4)
	y := ReLU(x)
	want := []float32{0, 0, 2, 0}
	for i, v := range y.Data() {
		if v != want[i] {
			t.Fatalf("ReLU: %v", y.Data())
		}
	}
	g := FromSlice([]float32{1, 1, 1, 1}, 4)
	gx := ReLUBackward(g, x)
	wantG := []float32{0, 0, 1, 0}
	for i, v := range gx.Data() {
		if v != wantG[i] {
			t.Fatalf("ReLUBackward: %v", gx.Data())
		}
	}
}

func TestReductions(t *testing.T) {
	a := FromSlice([]float32{1, -2, 3, 4}, 2, 2)
	if a.Sum() != 6 {
		t.Fatalf("Sum=%v", a.Sum())
	}
	if a.Mean() != 1.5 {
		t.Fatalf("Mean=%v", a.Mean())
	}
	if a.Max() != 4 || a.Min() != -2 {
		t.Fatalf("Max/Min=%v/%v", a.Max(), a.Min())
	}
	if math.Abs(a.Norm2()-math.Sqrt(1+4+9+16)) > 1e-9 {
		t.Fatalf("Norm2=%v", a.Norm2())
	}
}

func TestArgMaxRows(t *testing.T) {
	m := FromSlice([]float32{0.1, 0.9, 0.5, 0.2, 3, 3}, 3, 2)
	got := ArgMaxRows(m)
	// Ties resolve to the first (lowest index) maximum.
	want := []int{1, 0, 0}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("ArgMaxRows=%v want %v", got, want)
		}
	}
}

func TestSoftmaxRows(t *testing.T) {
	m := FromSlice([]float32{1, 2, 3, 1000, 1000, 1000}, 2, 3)
	s := SoftmaxRows(m)
	for r := 0; r < 2; r++ {
		sum := 0.0
		for c := 0; c < 3; c++ {
			v := float64(s.At(r, c))
			if math.IsNaN(v) || v < 0 || v > 1 {
				t.Fatalf("softmax out of range: %v", v)
			}
			sum += v
		}
		if math.Abs(sum-1) > 1e-5 {
			t.Fatalf("row %d softmax sums to %v", r, sum)
		}
	}
	// The large-value row must be handled stably (uniform 1/3 each).
	if math.Abs(float64(s.At(1, 0))-1.0/3) > 1e-5 {
		t.Fatalf("unstable softmax: %v", s.At(1, 0))
	}
}

func TestMatMulSmall(t *testing.T) {
	a := FromSlice([]float32{1, 2, 3, 4, 5, 6}, 2, 3)
	b := FromSlice([]float32{7, 8, 9, 10, 11, 12}, 3, 2)
	c := MatMul(a, b)
	want := []float32{58, 64, 139, 154}
	for i, v := range c.Data() {
		if v != want[i] {
			t.Fatalf("MatMul=%v want %v", c.Data(), want)
		}
	}
}

func TestMatMulAccAccumulates(t *testing.T) {
	a := Ones(2, 2)
	b := Ones(2, 2)
	out := Full(5, 2, 2)
	MatMulAcc(out, a, b)
	for _, v := range out.Data() {
		if v != 7 {
			t.Fatalf("MatMulAcc=%v", out.Data())
		}
	}
}

func TestMatMulParallelMatchesSerial(t *testing.T) {
	// Large enough to trigger the parallel path; compare against a naive
	// triple loop.
	r := NewRNG(42)
	m, k, n := 65, 33, 47
	a := RandNormal(r, 1, m, k)
	b := RandNormal(r, 1, k, n)
	got := MatMul(a, b)
	for i := 0; i < m; i++ {
		for j := 0; j < n; j++ {
			want := float32(0)
			for kk := 0; kk < k; kk++ {
				want += a.At(i, kk) * b.At(kk, j)
			}
			if diff := math.Abs(float64(got.At(i, j) - want)); diff > 1e-3 {
				t.Fatalf("(%d,%d): got %v want %v", i, j, got.At(i, j), want)
			}
		}
	}
}

func TestTranspose2D(t *testing.T) {
	r := NewRNG(7)
	a := RandNormal(r, 1, 37, 53)
	b := Transpose2D(a)
	if b.Dim(0) != 53 || b.Dim(1) != 37 {
		t.Fatalf("transpose shape %v", b.Shape())
	}
	for i := 0; i < 37; i++ {
		for j := 0; j < 53; j++ {
			if a.At(i, j) != b.At(j, i) {
				t.Fatal("transpose value mismatch")
			}
		}
	}
}

func TestMatVec(t *testing.T) {
	a := FromSlice([]float32{1, 2, 3, 4}, 2, 2)
	v := FromSlice([]float32{1, 1}, 2)
	got := MatVec(a, v)
	if got.At(0) != 3 || got.At(1) != 7 {
		t.Fatalf("MatVec=%v", got.Data())
	}
}

func TestMatMulPropertyAssociativityWithIdentity(t *testing.T) {
	// Property: A·I == A for random square A.
	f := func(seed uint64, szRaw uint8) bool {
		sz := int(szRaw%20) + 1
		r := NewRNG(seed)
		a := RandNormal(r, 1, sz, sz)
		id := New(sz, sz)
		for i := 0; i < sz; i++ {
			id.Set(1, i, i)
		}
		c := MatMul(a, id)
		for i := range c.Data() {
			if math.Abs(float64(c.Data()[i]-a.Data()[i])) > 1e-5 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestHasNaN(t *testing.T) {
	a := New(2, 2)
	if a.HasNaN() {
		t.Fatal("zero tensor reported NaN")
	}
	a.Set(float32(math.NaN()), 0, 1)
	if !a.HasNaN() {
		t.Fatal("NaN not detected")
	}
	b := New(1)
	b.Set(float32(math.Inf(1)), 0)
	if !b.HasNaN() {
		t.Fatal("Inf not detected")
	}
}

func TestCloneIndependence(t *testing.T) {
	a := FromSlice([]float32{1, 2}, 2)
	b := a.Clone()
	b.Set(9, 0)
	if a.At(0) != 1 {
		t.Fatal("Clone must not share data")
	}
}
