package tensor

import "testing"

func benchMM(b *testing.B, m, k, n int) {
	r := NewRNG(1)
	a := RandNormal(r, 1, m, k)
	bb := RandNormal(r, 1, k, n)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		MatMul(a, bb)
	}
	b.SetBytes(int64(m*k*n) * 2 * 4)
	flops := 2 * float64(m) * float64(k) * float64(n)
	b.ReportMetric(flops*float64(b.N)/b.Elapsed().Seconds()/1e9, "gflops")
}

func BenchmarkMM256(b *testing.B)  { benchMM(b, 256, 256, 256) }
func BenchmarkMM512(b *testing.B)  { benchMM(b, 512, 512, 512) }
func BenchmarkMMWide(b *testing.B) { benchMM(b, 64, 288, 2500) }
