//go:build amd64

#include "textflag.h"

// func qgemmKernel4x16(a *int8, b *uint8, cbuf *int32, kq int)
//
// 4×16 int8 micro-kernel: Y0..Y7 hold the int32 accumulator tile (row r in
// Y(2r), Y(2r+1)), Y8/Y9 the current packed-B quad row (16 columns × 4
// unsigned activation bytes), Y11 the broadcast packed-A weight quad (4
// signed bytes, one output channel). Per quad and row:
//
//	VPMADDUBSW  u8×s8 pair products summed into int16 lanes
//	VPMADDWD    ×1 fold of the int16 pairs into int32 column sums
//	VPADDD      accumulate
//
// The int16 stage saturates, but QWeightMax bounds pair sums to 32130 <
// 32767, so the kernel is exact and matches the scalar reference bit for
// bit. Y10 holds the int16 ones for the VPMADDWD fold.
TEXT ·qgemmKernel4x16(SB), NOSPLIT, $0-32
	MOVQ a+0(FP), SI
	MOVQ b+8(FP), DI
	MOVQ cbuf+16(FP), DX
	MOVQ kq+24(FP), CX

	// Y10 = sixteen int16 ones: all-ones compare, then shift each lane
	// down to 1.
	VPCMPEQW Y10, Y10, Y10
	VPSRLW   $15, Y10, Y10

	VPXOR Y0, Y0, Y0
	VPXOR Y1, Y1, Y1
	VPXOR Y2, Y2, Y2
	VPXOR Y3, Y3, Y3
	VPXOR Y4, Y4, Y4
	VPXOR Y5, Y5, Y5
	VPXOR Y6, Y6, Y6
	VPXOR Y7, Y7, Y7

	TESTQ CX, CX
	JZ    done

loop:
	VMOVDQU (DI), Y8
	VMOVDQU 32(DI), Y9

	VPBROADCASTD (SI), Y11
	VPMADDUBSW   Y11, Y8, Y12
	VPMADDWD     Y10, Y12, Y12
	VPADDD       Y12, Y0, Y0
	VPMADDUBSW   Y11, Y9, Y12
	VPMADDWD     Y10, Y12, Y12
	VPADDD       Y12, Y1, Y1

	VPBROADCASTD 4(SI), Y11
	VPMADDUBSW   Y11, Y8, Y12
	VPMADDWD     Y10, Y12, Y12
	VPADDD       Y12, Y2, Y2
	VPMADDUBSW   Y11, Y9, Y12
	VPMADDWD     Y10, Y12, Y12
	VPADDD       Y12, Y3, Y3

	VPBROADCASTD 8(SI), Y11
	VPMADDUBSW   Y11, Y8, Y12
	VPMADDWD     Y10, Y12, Y12
	VPADDD       Y12, Y4, Y4
	VPMADDUBSW   Y11, Y9, Y12
	VPMADDWD     Y10, Y12, Y12
	VPADDD       Y12, Y5, Y5

	VPBROADCASTD 12(SI), Y11
	VPMADDUBSW   Y11, Y8, Y12
	VPMADDWD     Y10, Y12, Y12
	VPADDD       Y12, Y6, Y6
	VPMADDUBSW   Y11, Y9, Y12
	VPMADDWD     Y10, Y12, Y12
	VPADDD       Y12, Y7, Y7

	ADDQ $16, SI
	ADDQ $64, DI
	DECQ CX
	JNZ  loop

done:
	VMOVDQU Y0, (DX)
	VMOVDQU Y1, 32(DX)
	VMOVDQU Y2, 64(DX)
	VMOVDQU Y3, 96(DX)
	VMOVDQU Y4, 128(DX)
	VMOVDQU Y5, 160(DX)
	VMOVDQU Y6, 192(DX)
	VMOVDQU Y7, 224(DX)
	VZEROUPPER
	RET
