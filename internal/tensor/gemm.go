package tensor

// Cache-blocked, register-tiled GEMM.
//
// The multiply C = A·B is driven as three nested blockings, the classic
// Goto/BLIS decomposition scaled to this package's shapes (weights × im2col
// columns, a few hundred per side):
//
//   - A is packed into row panels of gemmMR rows, laid out k-major so the
//     micro-kernel reads one contiguous gemmMR-wide column per k step.
//   - B is packed into column panels of gemmNR columns, also k-major, so
//     each k step reads one contiguous gemmNR-wide row.
//   - The k dimension is cut into gemmKC-sized blocks; one A panel block
//     (gemmMR×gemmKC) plus one B panel block (gemmKC×gemmNR) fit in L1/L2
//     while the gemmMR×gemmNR accumulator tile lives in registers.
//
// Parallelism is over output tiles — an (m/MR) × (n/NC) grid scheduled
// dynamically by parallel.ForTiles2D — instead of raw output rows, so a
// single tall-or-wide multiply still fans out across every core.
//
// The micro-kernel itself is selected at init: an AVX2+FMA 6×16 assembly
// kernel on capable amd64 hardware (see gemm_amd64.s), otherwise a pure-Go
// 4×4 register-tiled kernel. Both accumulate into a small contiguous tile
// buffer; the driver merges the tile into C, which keeps edge handling (m, n
// not multiples of the tile) out of the hot loop entirely.

import (
	"sync"
	"sync/atomic"

	"drainnas/internal/metrics"
	"drainnas/internal/parallel"
)

const (
	// gemmKC is the k-block size: one packed A block (gemmMR×gemmKC) and
	// one packed B block (gemmKC×gemmNR) together stay well inside L1/L2
	// while the accumulator tile stays in registers.
	gemmKC = 256
	// gemmNC is the number of output columns per parallel grid cell; the
	// packed B slice a cell touches (gemmKC×gemmNC ≈ 256 KiB) is reused
	// across every row tile, so it should be L2-resident.
	gemmNC = 256
	// gemmMaxTile bounds the accumulator tile buffer (6×16 for the AVX2
	// kernel is the largest shape).
	gemmMaxTile = 96
	// gemmSerialCutoff is the m*k*n product below which packing cannot
	// amortize and the naive streaming kernel runs instead (serially: the
	// goroutine fan-out dominates at this size too).
	gemmSerialCutoff = 1 << 15
)

// Micro-kernel configuration, fixed at init (gemm_amd64.go upgrades it when
// the CPU supports AVX2+FMA). A kernel computes or continues the product of
// one packed A panel block and one packed B panel block into the contiguous
// mr×nr tile buffer cbuf: acc=false starts a fresh tile, acc=true resumes
// one mid-way through the k-block loop.
var (
	gemmMR                                                      = 4
	gemmNR                                                      = 4
	microKernel    func(a, b, cbuf []float32, kc int, acc bool) = kernelScalar4x4
	gemmKernelName                                              = "scalar-4x4"
)

// GemmKernelName identifies the micro-kernel selected for this process
// ("avx2-6x16" or "scalar-4x4"), for stats endpoints and benchmark records.
func GemmKernelName() string { return gemmKernelName }

// kernelScalar4x4 is the portable micro-kernel: a 4×4 accumulator tile held
// in locals, two packed operand reads per k step, no stores inside the
// loop. It is the fallback when no assembly kernel is available and the
// reference implementation the assembly kernel is tested against.
func kernelScalar4x4(a, b, cbuf []float32, kc int, acc bool) {
	var c00, c01, c02, c03 float32
	var c10, c11, c12, c13 float32
	var c20, c21, c22, c23 float32
	var c30, c31, c32, c33 float32
	if acc {
		c00, c01, c02, c03 = cbuf[0], cbuf[1], cbuf[2], cbuf[3]
		c10, c11, c12, c13 = cbuf[4], cbuf[5], cbuf[6], cbuf[7]
		c20, c21, c22, c23 = cbuf[8], cbuf[9], cbuf[10], cbuf[11]
		c30, c31, c32, c33 = cbuf[12], cbuf[13], cbuf[14], cbuf[15]
	}
	a = a[: 4*kc : 4*kc]
	b = b[: 4*kc : 4*kc]
	for len(a) >= 4 && len(b) >= 4 {
		a0, a1, a2, a3 := a[0], a[1], a[2], a[3]
		b0, b1, b2, b3 := b[0], b[1], b[2], b[3]
		c00 += a0 * b0
		c01 += a0 * b1
		c02 += a0 * b2
		c03 += a0 * b3
		c10 += a1 * b0
		c11 += a1 * b1
		c12 += a1 * b2
		c13 += a1 * b3
		c20 += a2 * b0
		c21 += a2 * b1
		c22 += a2 * b2
		c23 += a2 * b3
		c30 += a3 * b0
		c31 += a3 * b1
		c32 += a3 * b2
		c33 += a3 * b3
		a = a[4:]
		b = b[4:]
	}
	cbuf[0], cbuf[1], cbuf[2], cbuf[3] = c00, c01, c02, c03
	cbuf[4], cbuf[5], cbuf[6], cbuf[7] = c10, c11, c12, c13
	cbuf[8], cbuf[9], cbuf[10], cbuf[11] = c20, c21, c22, c23
	cbuf[12], cbuf[13], cbuf[14], cbuf[15] = c30, c31, c32, c33
}

// packedA is matrix A packed into row-tile panels: slot (rt, kb) holds the
// gemmMR×kcLen block of rows [rt*MR, rt*MR+MR) and k range
// [kb*KC, kb*KC+kcLen), stored k-major (element (kk, ir) at kk*MR+ir).
// Slots are padded to full gemmKC×gemmMR so offsets are uniform; padded
// rows are zero-filled so the micro-kernel never multiplies stale pool
// garbage (denormals there would poison throughput, not correctness).
type packedA struct {
	buf      []float32
	m, k     int
	rowTiles int
	kBlocks  int
}

func packA(a []float32, lda, m, k int) packedA {
	mr := gemmMR
	rowTiles := (m + mr - 1) / mr
	kBlocks := (k + gemmKC - 1) / gemmKC
	slot := gemmKC * mr
	pa := packedA{
		buf:      getScratch(rowTiles * kBlocks * slot),
		m:        m,
		k:        k,
		rowTiles: rowTiles,
		kBlocks:  kBlocks,
	}
	for rt := 0; rt < rowTiles; rt++ {
		rows := m - rt*mr
		if rows > mr {
			rows = mr
		}
		for kb := 0; kb < kBlocks; kb++ {
			k0 := kb * gemmKC
			kcLen := k - k0
			if kcLen > gemmKC {
				kcLen = gemmKC
			}
			dst := pa.buf[(rt*kBlocks+kb)*slot:]
			for ir := 0; ir < rows; ir++ {
				src := a[(rt*mr+ir)*lda+k0:]
				for kk := 0; kk < kcLen; kk++ {
					dst[kk*mr+ir] = src[kk]
				}
			}
			for ir := rows; ir < mr; ir++ {
				for kk := 0; kk < kcLen; kk++ {
					dst[kk*mr+ir] = 0
				}
			}
		}
	}
	return pa
}

func (pa packedA) release() { putScratch(pa.buf) }

// packedB is matrix B packed into column panels: slot (p, kb) holds the
// kcLen×gemmNR block of columns [p*NR, p*NR+NR) and the kb-th k block,
// stored k-major (element (kk, jr) at kk*NR+jr). For a fixed panel the kb
// slots are contiguous, so the per-tile k loop streams sequentially.
// Padded columns are zero-filled for the same denormal reason as packedA.
type packedB struct {
	buf     []float32
	k, n    int
	nPanels int
	kBlocks int
}

// packB packs the k×n matrix b (leading dimension ldb ≥ n; ldb > n selects
// a column window of a wider matrix, which is how convolution row-chunks
// reuse an image in place).
func packB(b []float32, ldb, k, n int) packedB {
	nr := gemmNR
	nPanels := (n + nr - 1) / nr
	kBlocks := (k + gemmKC - 1) / gemmKC
	slot := gemmKC * nr
	pb := packedB{
		buf:     getScratch(nPanels * kBlocks * slot),
		k:       k,
		n:       n,
		nPanels: nPanels,
		kBlocks: kBlocks,
	}
	for p := 0; p < nPanels; p++ {
		j0 := p * nr
		cols := n - j0
		if cols > nr {
			cols = nr
		}
		for kb := 0; kb < kBlocks; kb++ {
			k0 := kb * gemmKC
			kcLen := k - k0
			if kcLen > gemmKC {
				kcLen = gemmKC
			}
			dst := pb.buf[(p*kBlocks+kb)*slot:]
			for kk := 0; kk < kcLen; kk++ {
				src := b[(k0+kk)*ldb+j0:]
				drow := dst[kk*nr : kk*nr+nr]
				for j := 0; j < cols; j++ {
					drow[j] = src[j]
				}
				for j := cols; j < nr; j++ {
					drow[j] = 0
				}
			}
		}
	}
	return pb
}

func (pb packedB) release() { putScratch(pb.buf) }

// computeTiles runs the micro-kernel over row tiles [rtLo, rtHi) × column
// panels [pLo, pHi), serially. For each output tile the k blocks accumulate
// in the register tile (via cbuf between blocks) and the finished tile is
// merged into C exactly once, masked to the valid rows/columns.
func computeTiles(pa packedA, pb packedB, c []float32, ldc int, rtLo, rtHi, pLo, pHi int, acc bool) {
	mr, nr := gemmMR, gemmNR
	aslot := gemmKC * mr
	bslot := gemmKC * nr
	kBlocks := pa.kBlocks
	// The accumulator tile comes from the scratch pool rather than a local
	// array: microKernel is a func variable, so escape analysis would move a
	// local to the heap on every call — the pool round trip is allocation-free.
	cbuf := getScratch(mr * nr)
	defer putScratch(cbuf)
	for rt := rtLo; rt < rtHi; rt++ {
		rows := pa.m - rt*mr
		if rows > mr {
			rows = mr
		}
		for p := pLo; p < pHi; p++ {
			cols := pb.n - p*nr
			if cols > nr {
				cols = nr
			}
			for kb := 0; kb < kBlocks; kb++ {
				kcLen := pa.k - kb*gemmKC
				if kcLen > gemmKC {
					kcLen = gemmKC
				}
				microKernel(
					pa.buf[(rt*kBlocks+kb)*aslot:],
					pb.buf[(p*kBlocks+kb)*bslot:],
					cbuf, kcLen, kb > 0)
			}
			for ir := 0; ir < rows; ir++ {
				crow := c[(rt*mr+ir)*ldc+p*nr:]
				trow := cbuf[ir*nr:]
				if acc {
					for j := 0; j < cols; j++ {
						crow[j] += trow[j]
					}
				} else {
					for j := 0; j < cols; j++ {
						crow[j] = trow[j]
					}
				}
			}
		}
	}
}

// gemmParallel computes (or accumulates, acc) c = a·b for row-major
// operands, parallelizing over the output-tile grid. c has leading
// dimension n (dense), a is m×k, b is k×n.
func gemmParallel(c, a, b []float32, m, k, n int, acc bool) {
	pa := packA(a, k, m, k)
	pb := packB(b, n, k, n)
	metrics.Kernel.TilesDispatched(pa.rowTiles * pb.nPanels)
	ncPanels := gemmNC / gemmNR
	nBlocks := (pb.nPanels + ncPanels - 1) / ncPanels
	parallel.ForTiles2D(pa.rowTiles, nBlocks, 0, func(rt, nb int) {
		pLo := nb * ncPanels
		pHi := pLo + ncPanels
		if pHi > pb.nPanels {
			pHi = pb.nPanels
		}
		computeTiles(pa, pb, c, n, rt, rt+1, pLo, pHi, acc)
	})
	pa.release()
	pb.release()
}

// matmulSerial is the strided, single-goroutine entry for callers that are
// already running inside a parallel region (per-sample convolution workers):
// tiled above the cutoff, naive below, never spawning goroutines of its own.
func matmulSerial(c []float32, ldc int, a []float32, lda int, b []float32, ldb int, m, k, n int, acc bool) {
	if m*k*n < gemmSerialCutoff {
		metrics.Kernel.NaiveCall()
		matmulNaive(c, ldc, a, lda, b, ldb, m, k, n, acc)
		return
	}
	metrics.Kernel.GemmCall()
	pa := packA(a, lda, m, k)
	pb := packB(b, ldb, k, n)
	metrics.Kernel.TilesDispatched(pa.rowTiles * pb.nPanels)
	computeTiles(pa, pb, c, ldc, 0, pa.rowTiles, 0, pb.nPanels, acc)
	pa.release()
	pb.release()
}

// weightPack defers and caches the A-panel packing of a matrix that many
// multiplies share — the weight matrix of a convolution, which every sample
// in the batch (and every row chunk within a sample) multiplies by. The
// first consumer above the tiled cutoff packs; the rest reuse the panels,
// which is the batch-level amortization the per-call packB cannot give.
type weightPack struct {
	src  []float32
	lda  int
	m, k int

	once sync.Once
	pa   packedA
	uses atomic.Int64
}

func newWeightPack(src []float32, lda, m, k int) *weightPack {
	return &weightPack{src: src, lda: lda, m: m, k: k}
}

// mulInto computes (or accumulates) c = W·b with c strided by ldc and b a
// k×n matrix with leading dimension ldb. Safe for concurrent use.
func (wp *weightPack) mulInto(c []float32, ldc int, b []float32, ldb, n int, acc bool) {
	if wp.m*wp.k*n < gemmSerialCutoff {
		metrics.Kernel.NaiveCall()
		matmulNaive(c, ldc, wp.src, wp.lda, b, ldb, wp.m, wp.k, n, acc)
		return
	}
	metrics.Kernel.GemmCall()
	wp.once.Do(func() { wp.pa = packA(wp.src, wp.lda, wp.m, wp.k) })
	if wp.uses.Add(1) > 1 {
		metrics.Kernel.PackReused()
	}
	pb := packB(b, ldb, wp.k, n)
	metrics.Kernel.TilesDispatched(wp.pa.rowTiles * pb.nPanels)
	computeTiles(wp.pa, pb, c, ldc, 0, wp.pa.rowTiles, 0, pb.nPanels, acc)
	pb.release()
}

// release returns the packed panels (if any multiply ever packed them) to
// the scratch pool. Call only after all mulInto calls have returned.
func (wp *weightPack) release() {
	if wp.uses.Load() > 0 {
		wp.pa.release()
	}
}
