package tensor

import (
	"fmt"

	"drainnas/internal/parallel"
)

// ConvOut returns the output spatial size of a convolution/pooling dimension:
// floor((in + 2*pad - kernel)/stride) + 1, or 0 when the (padded) input is
// smaller than the kernel (Go's truncating division would otherwise round
// the negative numerator toward zero and report a phantom output).
func ConvOut(in, kernel, stride, pad int) int {
	span := in + 2*pad - kernel
	if span < 0 {
		return 0
	}
	return span/stride + 1
}

// Im2Col lowers one (C,H,W) image (given as a flat slice) into a column
// matrix dst of shape (C*KH*KW, OH*OW), so that convolution becomes a matrix
// multiply with the (OC, C*KH*KW) weight matrix. Out-of-bounds taps (from
// padding) contribute zeros.
func Im2Col(src []float32, c, h, w, kh, kw, stride, pad int, dst []float32) {
	Im2ColRows(src, c, h, w, kh, kw, stride, pad, 0, ConvOut(h, kh, stride, pad), dst)
}

// Im2ColRows lowers only the output rows [oyLo, oyHi) of the image: dst has
// shape (C*KH*KW, (oyHi-oyLo)*OW), the column window of the full Im2Col
// matrix for those rows. It is the unit of intra-sample parallelism — each
// convolution worker lowers and multiplies its own horizontal band, so a
// batch-1 forward pass still spreads over every core.
func Im2ColRows(src []float32, c, h, w, kh, kw, stride, pad, oyLo, oyHi int, dst []float32) {
	oh := ConvOut(h, kh, stride, pad)
	ow := ConvOut(w, kw, stride, pad)
	if oyLo < 0 || oyHi > oh || oyLo > oyHi {
		panic(fmt.Sprintf("tensor: Im2ColRows row range [%d,%d) outside [0,%d)", oyLo, oyHi, oh))
	}
	cols := (oyHi - oyLo) * ow
	if len(dst) != c*kh*kw*cols {
		panic(fmt.Sprintf("tensor: Im2ColRows dst length %d, want %d", len(dst), c*kh*kw*cols))
	}
	row := 0
	for ch := 0; ch < c; ch++ {
		plane := src[ch*h*w : (ch+1)*h*w]
		for ky := 0; ky < kh; ky++ {
			for kx := 0; kx < kw; kx++ {
				drow := dst[row*cols : (row+1)*cols]
				row++
				i := 0
				for oy := oyLo; oy < oyHi; oy++ {
					sy := oy*stride - pad + ky
					if sy < 0 || sy >= h {
						for ox := 0; ox < ow; ox++ {
							drow[i] = 0
							i++
						}
						continue
					}
					srow := plane[sy*w : (sy+1)*w]
					for ox := 0; ox < ow; ox++ {
						sx := ox*stride - pad + kx
						if sx < 0 || sx >= w {
							drow[i] = 0
						} else {
							drow[i] = srow[sx]
						}
						i++
					}
				}
			}
		}
	}
}

// Col2Im scatters a column matrix (the gradient w.r.t. the im2col output)
// back into an image gradient of shape (C,H,W), accumulating overlapping
// taps. dst must be pre-zeroed by the caller if a fresh gradient is wanted.
func Col2Im(col []float32, c, h, w, kh, kw, stride, pad int, dst []float32) {
	oh := ConvOut(h, kh, stride, pad)
	ow := ConvOut(w, kw, stride, pad)
	cols := oh * ow
	if len(col) != c*kh*kw*cols {
		panic(fmt.Sprintf("tensor: Col2Im col length %d, want %d", len(col), c*kh*kw*cols))
	}
	if len(dst) != c*h*w {
		panic(fmt.Sprintf("tensor: Col2Im dst length %d, want %d", len(dst), c*h*w))
	}
	row := 0
	for ch := 0; ch < c; ch++ {
		plane := dst[ch*h*w : (ch+1)*h*w]
		for ky := 0; ky < kh; ky++ {
			for kx := 0; kx < kw; kx++ {
				crow := col[row*cols : (row+1)*cols]
				row++
				i := 0
				for oy := 0; oy < oh; oy++ {
					sy := oy*stride - pad + ky
					if sy < 0 || sy >= h {
						i += ow
						continue
					}
					srow := plane[sy*w : (sy+1)*w]
					for ox := 0; ox < ow; ox++ {
						sx := ox*stride - pad + kx
						if sx >= 0 && sx < w {
							srow[sx] += crow[i]
						}
						i++
					}
				}
			}
		}
	}
}

// Conv2D computes a batched 2-D convolution.
//
//	input:  (N, C, H, W)
//	weight: (OC, C, KH, KW)
//	bias:   (OC) or nil
//	output: (N, OC, OH, OW)
//
// The work grid is (sample × output-row chunk): with a full batch each
// sample is one chunk (the pre-existing batch parallelism), and when the
// batch is smaller than the core count — the batch-1 serving case — each
// sample's output rows are split so every core still contributes. All
// chunks share one lazily packed copy of the weight matrix (weightPack), so
// the GEMM A-panels are built once per call, not once per sample.
func Conv2D(input, weight, bias *Tensor, stride, pad int) *Tensor {
	n, c, h, w := dims4("Conv2D input", input)
	oc, wc, kh, kw := dims4("Conv2D weight", weight)
	if wc != c {
		panic(fmt.Sprintf("tensor: Conv2D channel mismatch input C=%d weight C=%d", c, wc))
	}
	if bias != nil && (bias.NDim() != 1 || bias.shape[0] != oc) {
		panic(fmt.Sprintf("tensor: Conv2D bias shape %v, want [%d]", bias.shape, oc))
	}
	oh := ConvOut(h, kh, stride, pad)
	ow := ConvOut(w, kw, stride, pad)
	if oh <= 0 || ow <= 0 {
		panic(fmt.Sprintf("tensor: Conv2D produces empty output (%dx%d) for input %dx%d k=%dx%d s=%d p=%d", oh, ow, h, w, kh, kw, stride, pad))
	}
	out := New(n, oc, oh, ow)
	kdim := c * kh * kw
	wmat := weight.Reshape(oc, kdim)
	wp := newWeightPack(wmat.data, kdim, oc, kdim)
	var b []float32
	if bias != nil {
		b = bias.data
	}
	convInto(out, input, wp, b, false, kh, kw, stride, pad)
	wp.release()
	return out
}

// convInto is the convolution driver shared by Conv2D (per-call pack) and
// PackedConv (persistent pack): it runs the (sample × output-row chunk) grid
// against an already-built weight pack, writing into a caller-provided
// output tensor, with bias addition and an optional ReLU fused into the
// per-chunk epilogue so activations are touched exactly once. Shapes must
// already be validated by the caller.
func convInto(out, input *Tensor, wp *weightPack, bias []float32, relu bool, kh, kw, stride, pad int) {
	n := input.shape[0]
	oh := out.shape[2]
	chunks := 1
	if workers := parallel.DefaultWorkers; n < workers {
		chunks = (workers + n - 1) / n
		if chunks > oh {
			chunks = oh
		}
	}
	job := convJob{
		out: out, input: input, wp: wp, bias: bias, relu: relu,
		kh: kh, kw: kw, stride: stride, pad: pad, chunks: chunks,
	}
	if parallel.DefaultWorkers == 1 || n*chunks == 1 {
		// Serial grid: calling the chunk body directly (rather than through
		// a closure handed to the scheduler) keeps the steady-state inference
		// path allocation-free.
		for s := 0; s < n; s++ {
			for ci := 0; ci < chunks; ci++ {
				job.run(s, ci)
			}
		}
		return
	}
	pjob := job // escapes via the method value; the serial job stays on the stack
	parallel.ForTiles2D(n, chunks, 0, pjob.run)
}

// convJob carries one convInto invocation's parameters so the per-chunk body
// can be a method (direct-callable on the serial path) instead of a closure.
type convJob struct {
	out, input *Tensor
	wp         *weightPack
	bias       []float32
	relu       bool
	kh, kw     int
	stride     int
	pad        int
	chunks     int
}

// run executes grid cell (sample s, row-chunk ci).
func (j *convJob) run(s, ci int) {
	c, h, w := j.input.shape[1], j.input.shape[2], j.input.shape[3]
	oc, oh, ow := j.out.shape[1], j.out.shape[2], j.out.shape[3]
	kdim := c * j.kh * j.kw
	cols := oh * ow
	// Fast path: a 1×1 kernel needs no patch lowering — the convolution is
	// a plain channel-mixing matmul over (sub-sampled) pixels. ResNet's
	// downsample projections hit this path on every block boundary.
	pointwise := j.kh == 1 && j.kw == 1 && j.pad == 0
	oyLo, oyHi := parallel.SplitRange(oh, j.chunks, ci)
	if oyLo == oyHi {
		return
	}
	colLo := oyLo * ow
	chunkCols := (oyHi - oyLo) * ow
	sample := j.input.data[s*c*h*w : (s+1)*c*h*w]
	var bsrc, scratch []float32
	ldb := chunkCols
	switch {
	case pointwise && j.stride == 1:
		// The column matrix is the image itself; the chunk is a column
		// window of it, addressed in place via the leading dimension.
		bsrc = sample[colLo:]
		ldb = h * w
	case pointwise:
		scratch = getScratch(c * chunkCols)
		pointwiseColumns(sample, c, h, w, j.stride, oyLo, oyHi, scratch)
		bsrc = scratch
	default:
		scratch = getScratch(kdim * chunkCols)
		Im2ColRows(sample, c, h, w, j.kh, j.kw, j.stride, j.pad, oyLo, oyHi, scratch)
		bsrc = scratch
	}
	res := j.out.data[s*oc*cols : (s+1)*oc*cols]
	j.wp.mulInto(res[colLo:], cols, bsrc, ldb, chunkCols, false)
	if scratch != nil {
		putScratch(scratch)
	}
	if j.bias != nil || j.relu {
		for o := 0; o < oc; o++ {
			var bv float32
			if j.bias != nil {
				bv = j.bias[o]
			}
			dst := res[o*cols+colLo : o*cols+colLo+chunkCols]
			if j.relu {
				for i, v := range dst {
					v += bv
					if v < 0 {
						v = 0
					}
					dst[i] = v
				}
			} else if bv != 0 {
				for i := range dst {
					dst[i] += bv
				}
			}
		}
	}
}

// pointwiseColumns builds the column window for output rows [oyLo, oyHi) of
// a strided 1×1 convolution into dst (shape C × (oyHi-oyLo)*OW): the
// strided pixel subset of each channel plane. (The stride-1 case never gets
// here — the image itself serves as the column matrix.)
func pointwiseColumns(src []float32, c, h, w, stride, oyLo, oyHi int, dst []float32) {
	ow := ConvOut(w, 1, stride, 0)
	chunkCols := (oyHi - oyLo) * ow
	for ch := 0; ch < c; ch++ {
		plane := src[ch*h*w : (ch+1)*h*w]
		drow := dst[ch*chunkCols : (ch+1)*chunkCols]
		i := 0
		for y := oyLo; y < oyHi; y++ {
			row := plane[y*stride*w:]
			for x := 0; x < ow; x++ {
				drow[i] = row[x*stride]
				i++
			}
		}
	}
}

// transposeInto writes srcᵀ (n×m) of the m×n matrix src into dst, blocked
// for cache locality. Serial: it runs inside per-sample workers.
func transposeInto(src []float32, m, n int, dst []float32) {
	const block = 32
	for i0 := 0; i0 < m; i0 += block {
		iMax := i0 + block
		if iMax > m {
			iMax = m
		}
		for j0 := 0; j0 < n; j0 += block {
			jMax := j0 + block
			if jMax > n {
				jMax = n
			}
			for i := i0; i < iMax; i++ {
				for j := j0; j < jMax; j++ {
					dst[j*m+i] = src[i*n+j]
				}
			}
		}
	}
}

// Conv2DBackward computes the gradients of Conv2D.
//
// Given gradOut (N, OC, OH, OW) it returns gradIn (N, C, H, W), accumulates
// weight gradients into gradW (OC, C, KH, KW) and, when gradB is non-nil,
// bias gradients into gradB (OC). gradW/gradB are accumulated (+=) so a
// caller can sum gradients over micro-batches.
//
// Every per-worker transient — the im2col buffer, its transpose, the
// column-gradient buffer and the weight/bias gradient partials — comes from
// the scratch pool, so a training step allocates nothing here after warmup.
func Conv2DBackward(input, weight, gradOut, gradW, gradB *Tensor, stride, pad int) *Tensor {
	n, c, h, w := dims4("Conv2DBackward input", input)
	oc, _, kh, kw := dims4("Conv2DBackward weight", weight)
	_, goc, oh, ow := dims4("Conv2DBackward gradOut", gradOut)
	if goc != oc {
		panic(fmt.Sprintf("tensor: Conv2DBackward OC mismatch %d vs %d", goc, oc))
	}
	kdim := c * kh * kw
	cols := oh * ow
	gradIn := New(n, c, h, w)
	wmat := weight.Reshape(oc, kdim)
	wmatT := Transpose2D(wmat)
	// Wᵀ is shared by every sample's gradCol multiply; pack it once.
	wtp := newWeightPack(wmatT.data, oc, kdim, oc)
	gwMat := gradW.Reshape(oc, kdim)

	// Per-sample weight-gradient partials are accumulated into worker-local
	// buffers and reduced serially, keeping the parallel phase lock-free.
	workers := parallel.DefaultWorkers
	if workers > n {
		workers = n
	}
	partialW := make([][]float32, workers)
	partialB := make([][]float32, workers)
	parallel.ForChunked(n, workers, func(lo, hi int) {
		// Identify this worker's slot by its range start; ranges are disjoint.
		slot := workerSlot(lo, n, workers)
		gw := getScratch(oc * kdim)
		for i := range gw {
			gw[i] = 0
		}
		var gb []float32
		if gradB != nil {
			gb = getScratch(oc)
			for i := range gb {
				gb[i] = 0
			}
		}
		col := getScratch(kdim * cols)
		colT := getScratch(kdim * cols)
		gcol := getScratch(kdim * cols)
		for s := lo; s < hi; s++ {
			Im2Col(input.data[s*c*h*w:(s+1)*c*h*w], c, h, w, kh, kw, stride, pad, col)
			gout := gradOut.data[s*oc*cols : (s+1)*oc*cols]
			// gradW += gout · colᵀ
			transposeInto(col, kdim, cols, colT)
			matmulSerial(gw, kdim, gout, cols, colT, kdim, oc, cols, kdim, true)
			// gradCol = Wᵀ · gout, then scatter back to image space.
			wtp.mulInto(gcol, cols, gout, cols, cols, false)
			Col2Im(gcol, c, h, w, kh, kw, stride, pad, gradIn.data[s*c*h*w:(s+1)*c*h*w])
			if gb != nil {
				for o := 0; o < oc; o++ {
					grow := gout[o*cols : (o+1)*cols]
					sum := float32(0)
					for _, v := range grow {
						sum += v
					}
					gb[o] += sum
				}
			}
		}
		putScratch(gcol)
		putScratch(colT)
		putScratch(col)
		partialW[slot] = gw
		partialB[slot] = gb
	})
	wtp.release()
	for _, gw := range partialW {
		if gw == nil {
			continue
		}
		for i, v := range gw {
			gwMat.data[i] += v
		}
		putScratch(gw)
	}
	for _, gb := range partialB {
		if gb == nil {
			continue
		}
		if gradB != nil {
			for i, v := range gb {
				gradB.data[i] += v
			}
		}
		putScratch(gb)
	}
	return gradIn
}

// workerSlot recovers the chunk index of the range starting at lo when n
// items are split across `workers` chunks the way parallel.ForChunked splits
// them (first n%workers chunks get one extra element).
func workerSlot(lo, n, workers int) int {
	if workers <= 1 {
		return 0
	}
	base := n / workers
	extra := n % workers
	bigSpan := (base + 1) * extra
	if lo < bigSpan {
		return lo / (base + 1)
	}
	return extra + (lo-bigSpan)/base
}

func dims4(what string, t *Tensor) (a, b, c, d int) {
	if t.NDim() != 4 {
		panic(fmt.Sprintf("tensor: %s wants a 4-D tensor, got shape %v", what, t.shape))
	}
	return t.shape[0], t.shape[1], t.shape[2], t.shape[3]
}
