package tensor

import (
	"fmt"
	"sync"

	"drainnas/internal/parallel"
)

// ConvOut returns the output spatial size of a convolution/pooling dimension:
// floor((in + 2*pad - kernel)/stride) + 1, or 0 when the (padded) input is
// smaller than the kernel (Go's truncating division would otherwise round
// the negative numerator toward zero and report a phantom output).
func ConvOut(in, kernel, stride, pad int) int {
	span := in + 2*pad - kernel
	if span < 0 {
		return 0
	}
	return span/stride + 1
}

// Im2Col lowers one (C,H,W) image (given as a flat slice) into a column
// matrix dst of shape (C*KH*KW, OH*OW), so that convolution becomes a matrix
// multiply with the (OC, C*KH*KW) weight matrix. Out-of-bounds taps (from
// padding) contribute zeros.
func Im2Col(src []float32, c, h, w, kh, kw, stride, pad int, dst []float32) {
	oh := ConvOut(h, kh, stride, pad)
	ow := ConvOut(w, kw, stride, pad)
	cols := oh * ow
	if len(dst) != c*kh*kw*cols {
		panic(fmt.Sprintf("tensor: Im2Col dst length %d, want %d", len(dst), c*kh*kw*cols))
	}
	row := 0
	for ch := 0; ch < c; ch++ {
		plane := src[ch*h*w : (ch+1)*h*w]
		for ky := 0; ky < kh; ky++ {
			for kx := 0; kx < kw; kx++ {
				drow := dst[row*cols : (row+1)*cols]
				row++
				i := 0
				for oy := 0; oy < oh; oy++ {
					sy := oy*stride - pad + ky
					if sy < 0 || sy >= h {
						for ox := 0; ox < ow; ox++ {
							drow[i] = 0
							i++
						}
						continue
					}
					srow := plane[sy*w : (sy+1)*w]
					for ox := 0; ox < ow; ox++ {
						sx := ox*stride - pad + kx
						if sx < 0 || sx >= w {
							drow[i] = 0
						} else {
							drow[i] = srow[sx]
						}
						i++
					}
				}
			}
		}
	}
}

// Col2Im scatters a column matrix (the gradient w.r.t. the im2col output)
// back into an image gradient of shape (C,H,W), accumulating overlapping
// taps. dst must be pre-zeroed by the caller if a fresh gradient is wanted.
func Col2Im(col []float32, c, h, w, kh, kw, stride, pad int, dst []float32) {
	oh := ConvOut(h, kh, stride, pad)
	ow := ConvOut(w, kw, stride, pad)
	cols := oh * ow
	if len(col) != c*kh*kw*cols {
		panic(fmt.Sprintf("tensor: Col2Im col length %d, want %d", len(col), c*kh*kw*cols))
	}
	if len(dst) != c*h*w {
		panic(fmt.Sprintf("tensor: Col2Im dst length %d, want %d", len(dst), c*h*w))
	}
	row := 0
	for ch := 0; ch < c; ch++ {
		plane := dst[ch*h*w : (ch+1)*h*w]
		for ky := 0; ky < kh; ky++ {
			for kx := 0; kx < kw; kx++ {
				crow := col[row*cols : (row+1)*cols]
				row++
				i := 0
				for oy := 0; oy < oh; oy++ {
					sy := oy*stride - pad + ky
					if sy < 0 || sy >= h {
						i += ow
						continue
					}
					srow := plane[sy*w : (sy+1)*w]
					for ox := 0; ox < ow; ox++ {
						sx := ox*stride - pad + kx
						if sx >= 0 && sx < w {
							srow[sx] += crow[i]
						}
						i++
					}
				}
			}
		}
	}
}

// Conv2D computes a batched 2-D convolution.
//
//	input:  (N, C, H, W)
//	weight: (OC, C, KH, KW)
//	bias:   (OC) or nil
//	output: (N, OC, OH, OW)
//
// The batch dimension is processed in parallel; each worker lowers its
// sample with Im2Col and multiplies by the shared weight matrix.
func Conv2D(input, weight, bias *Tensor, stride, pad int) *Tensor {
	n, c, h, w := dims4("Conv2D input", input)
	oc, wc, kh, kw := dims4("Conv2D weight", weight)
	if wc != c {
		panic(fmt.Sprintf("tensor: Conv2D channel mismatch input C=%d weight C=%d", c, wc))
	}
	if bias != nil && (bias.NDim() != 1 || bias.shape[0] != oc) {
		panic(fmt.Sprintf("tensor: Conv2D bias shape %v, want [%d]", bias.shape, oc))
	}
	oh := ConvOut(h, kh, stride, pad)
	ow := ConvOut(w, kw, stride, pad)
	if oh <= 0 || ow <= 0 {
		panic(fmt.Sprintf("tensor: Conv2D produces empty output (%dx%d) for input %dx%d k=%dx%d s=%d p=%d", oh, ow, h, w, kh, kw, stride, pad))
	}
	out := New(n, oc, oh, ow)
	kdim := c * kh * kw
	cols := oh * ow
	wmat := weight.Reshape(oc, kdim)
	// Fast path: a 1×1 kernel needs no patch lowering — the convolution is
	// a plain channel-mixing matmul over (sub-sampled) pixels. ResNet's
	// downsample projections hit this path on every block boundary.
	pointwise := kh == 1 && kw == 1 && pad == 0
	parallel.Map(n, 0, func(s int) {
		var colT *Tensor
		var scratch []float32
		if pointwise {
			colT = pointwiseColumns(input.data[s*c*h*w:(s+1)*c*h*w], c, h, w, stride)
		} else {
			scratch = getScratch(kdim * cols)
			Im2Col(input.data[s*c*h*w:(s+1)*c*h*w], c, h, w, kh, kw, stride, pad, scratch)
			colT = FromSlice(scratch, kdim, cols)
		}
		res := out.data[s*oc*cols : (s+1)*oc*cols]
		matmulInto(FromSlice(res, oc, cols), wmat, colT, oc, kdim, cols, false)
		if scratch != nil {
			putScratch(scratch)
		}
		if bias != nil {
			for o := 0; o < oc; o++ {
				b := bias.data[o]
				dst := res[o*cols : (o+1)*cols]
				for i := range dst {
					dst[i] += b
				}
			}
		}
	})
	return out
}

// scratchPool recycles im2col buffers: conv lowering is the training loop's
// dominant transient allocation, and reuse keeps GC pressure flat across
// epochs. Buffers are stored by capacity and sliced to the requested size.
var scratchPool sync.Pool

// getScratch returns a length-n float32 buffer, reusing a pooled one when
// its capacity suffices. Contents are unspecified; Im2Col overwrites every
// element it reads through.
func getScratch(n int) []float32 {
	if v := scratchPool.Get(); v != nil {
		buf := v.([]float32)
		if cap(buf) >= n {
			return buf[:n]
		}
	}
	return make([]float32, n)
}

// putScratch returns a buffer to the pool.
func putScratch(buf []float32) {
	scratchPool.Put(buf[:cap(buf)]) //nolint:staticcheck // slice, not pointer, is fine here
}

// pointwiseColumns builds the (C, OH*OW) matrix for a 1×1 convolution:
// with stride 1 it is the image itself (no copy); otherwise the strided
// pixel subset.
func pointwiseColumns(src []float32, c, h, w, stride int) *Tensor {
	if stride == 1 {
		return FromSlice(src, c, h*w)
	}
	oh := ConvOut(h, 1, stride, 0)
	ow := ConvOut(w, 1, stride, 0)
	col := make([]float32, c*oh*ow)
	for ch := 0; ch < c; ch++ {
		plane := src[ch*h*w : (ch+1)*h*w]
		dst := col[ch*oh*ow : (ch+1)*oh*ow]
		i := 0
		for y := 0; y < oh; y++ {
			row := plane[y*stride*w:]
			for x := 0; x < ow; x++ {
				dst[i] = row[x*stride]
				i++
			}
		}
	}
	return FromSlice(col, c, oh*ow)
}

// Conv2DBackward computes the gradients of Conv2D.
//
// Given gradOut (N, OC, OH, OW) it returns gradIn (N, C, H, W), accumulates
// weight gradients into gradW (OC, C, KH, KW) and, when gradB is non-nil,
// bias gradients into gradB (OC). gradW/gradB are accumulated (+=) so a
// caller can sum gradients over micro-batches.
func Conv2DBackward(input, weight, gradOut, gradW, gradB *Tensor, stride, pad int) *Tensor {
	n, c, h, w := dims4("Conv2DBackward input", input)
	oc, _, kh, kw := dims4("Conv2DBackward weight", weight)
	_, goc, oh, ow := dims4("Conv2DBackward gradOut", gradOut)
	if goc != oc {
		panic(fmt.Sprintf("tensor: Conv2DBackward OC mismatch %d vs %d", goc, oc))
	}
	kdim := c * kh * kw
	cols := oh * ow
	gradIn := New(n, c, h, w)
	wmat := weight.Reshape(oc, kdim)
	wmatT := Transpose2D(wmat)
	gwMat := gradW.Reshape(oc, kdim)

	// Per-sample weight-gradient partials are accumulated into worker-local
	// buffers and reduced serially, keeping the parallel phase lock-free.
	workers := parallel.DefaultWorkers
	if workers > n {
		workers = n
	}
	partialW := make([][]float32, workers)
	partialB := make([][]float32, workers)
	parallel.ForChunked(n, workers, func(lo, hi int) {
		// Identify this worker's slot by its range start; ranges are disjoint.
		slot := workerSlot(lo, n, workers)
		gw := make([]float32, oc*kdim)
		var gb []float32
		if gradB != nil {
			gb = make([]float32, oc)
		}
		col := make([]float32, kdim*cols)
		gcol := make([]float32, kdim*cols)
		for s := lo; s < hi; s++ {
			Im2Col(input.data[s*c*h*w:(s+1)*c*h*w], c, h, w, kh, kw, stride, pad, col)
			gout := FromSlice(gradOut.data[s*oc*cols:(s+1)*oc*cols], oc, cols)
			// gradW += gout · colᵀ
			colMat := FromSlice(col, kdim, cols)
			colT := Transpose2D(colMat)
			matmulInto(FromSlice(gw, oc, kdim), gout, colT, oc, cols, kdim, true)
			// gradCol = Wᵀ · gout, then scatter back to image space.
			matmulInto(FromSlice(gcol, kdim, cols), wmatT, gout, kdim, oc, cols, false)
			Col2Im(gcol, c, h, w, kh, kw, stride, pad, gradIn.data[s*c*h*w:(s+1)*c*h*w])
			if gb != nil {
				for o := 0; o < oc; o++ {
					grow := gout.data[o*cols : (o+1)*cols]
					sum := float32(0)
					for _, v := range grow {
						sum += v
					}
					gb[o] += sum
				}
			}
		}
		partialW[slot] = gw
		partialB[slot] = gb
	})
	for _, gw := range partialW {
		if gw == nil {
			continue
		}
		for i, v := range gw {
			gwMat.data[i] += v
		}
	}
	if gradB != nil {
		for _, gb := range partialB {
			if gb == nil {
				continue
			}
			for i, v := range gb {
				gradB.data[i] += v
			}
		}
	}
	return gradIn
}

// workerSlot recovers the chunk index of the range starting at lo when n
// items are split across `workers` chunks the way parallel.ForChunked splits
// them (first n%workers chunks get one extra element).
func workerSlot(lo, n, workers int) int {
	if workers <= 1 {
		return 0
	}
	base := n / workers
	extra := n % workers
	bigSpan := (base + 1) * extra
	if lo < bigSpan {
		return lo / (base + 1)
	}
	return extra + (lo-bigSpan)/base
}

func dims4(what string, t *Tensor) (a, b, c, d int) {
	if t.NDim() != 4 {
		panic(fmt.Sprintf("tensor: %s wants a 4-D tensor, got shape %v", what, t.shape))
	}
	return t.shape[0], t.shape[1], t.shape[2], t.shape[3]
}
