package tensor

import (
	"math/bits"
	"sync"

	"drainnas/internal/metrics"
)

// The scratch pool recycles the package's transient float32 buffers —
// im2col lowerings, GEMM packing panels, transposes, gradient partials.
// These are the training and serving loops' dominant transient allocations,
// and reuse keeps GC pressure flat across epochs.
//
// Buffers are bucketed by power-of-two capacity class. A request is served
// from the class that can always satisfy it (so a pooled buffer is never
// "too small" and silently dropped, the failure mode of the previous
// single-pool design: under mixed sizes it would pull a small buffer, find
// it short, allocate, and lose the pooled one forever). Waste is bounded at
// 2× the requested size; classes below scratchMinClass share one bucket so
// tiny buffers don't fragment across pools.
// Buffers travel through the pools inside *[]float32 boxes: a pointer is
// interface-shaped, so Put never boxes (storing a bare slice would allocate
// a 24-byte header on every return — measurable churn on the zero-alloc
// inference path). The boxes themselves recycle through scratchBoxes, so a
// steady-state get/put round trip allocates nothing at all.
const scratchMinClass = 6 // smallest bucket: 64 floats (256 B)

var (
	scratchPools [28]sync.Pool
	scratchBoxes = sync.Pool{New: func() any { return new([]float32) }}
)

// scratchPoolDisabled short-circuits the pool (every get allocates, every
// put drops); tests use it to compare pooled against fresh-buffer runs.
var scratchPoolDisabled = false

func scratchClass(n int) int {
	c := bits.Len(uint(n - 1)) // ceil(log2 n)
	if c < scratchMinClass {
		c = scratchMinClass
	}
	return c
}

// getScratch returns a length-n float32 buffer, reusing a pooled one when
// available. Contents are unspecified: callers either overwrite every
// element (im2col, packing) or zero it explicitly (gradient accumulators).
func getScratch(n int) []float32 {
	if n <= 0 {
		return nil
	}
	c := scratchClass(n)
	if !scratchPoolDisabled {
		if v := scratchPools[c].Get(); v != nil {
			box := v.(*[]float32)
			buf := *box
			*box = nil // don't pin the buffer from the box pool
			scratchBoxes.Put(box)
			metrics.Kernel.ScratchHit()
			return buf[:n]
		}
	}
	metrics.Kernel.ScratchMiss()
	return make([]float32, 1<<c)[:n]
}

// putScratch returns a buffer to its capacity class. Buffers from
// getScratch have power-of-two capacities and land back in their own class;
// a foreign buffer is filed under the largest class it can always satisfy.
func putScratch(buf []float32) {
	c := cap(buf)
	if c < 1<<scratchMinClass || scratchPoolDisabled {
		return
	}
	class := bits.Len(uint(c)) - 1 // floor(log2 cap): cap ≥ 2^class
	box := scratchBoxes.Get().(*[]float32)
	*box = buf[:c:c]
	scratchPools[class].Put(box)
}
