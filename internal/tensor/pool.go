package tensor

import (
	"fmt"

	"drainnas/internal/parallel"
)

// MaxPool2D applies max pooling over (N, C, H, W) input and returns the
// pooled output together with the flat argmax index (into the per-plane H*W
// space) of each output element, which the backward pass needs.
func MaxPool2D(input *Tensor, kernel, stride, pad int) (*Tensor, []int32) {
	n, c, h, w := dims4("MaxPool2D input", input)
	oh := ConvOut(h, kernel, stride, pad)
	ow := ConvOut(w, kernel, stride, pad)
	if oh <= 0 || ow <= 0 {
		panic(fmt.Sprintf("tensor: MaxPool2D produces empty output for input %dx%d k=%d s=%d p=%d", h, w, kernel, stride, pad))
	}
	out := New(n, c, oh, ow)
	argmax := make([]int32, n*c*oh*ow)
	parallel.Map(n*c, 0, func(p int) {
		plane := input.data[p*h*w : (p+1)*h*w]
		dst := out.data[p*oh*ow : (p+1)*oh*ow]
		arg := argmax[p*oh*ow : (p+1)*oh*ow]
		i := 0
		for oy := 0; oy < oh; oy++ {
			for ox := 0; ox < ow; ox++ {
				best := float32(0)
				bestIdx := int32(-1)
				for ky := 0; ky < kernel; ky++ {
					sy := oy*stride - pad + ky
					if sy < 0 || sy >= h {
						continue
					}
					for kx := 0; kx < kernel; kx++ {
						sx := ox*stride - pad + kx
						if sx < 0 || sx >= w {
							continue
						}
						v := plane[sy*w+sx]
						if bestIdx < 0 || v > best {
							best = v
							bestIdx = int32(sy*w + sx)
						}
					}
				}
				// A window fully inside padding (possible only with extreme
				// parameters) contributes zero.
				if bestIdx < 0 {
					best = 0
					bestIdx = 0
				}
				dst[i] = best
				arg[i] = bestIdx
				i++
			}
		}
	})
	return out, argmax
}

// MaxPool2DBackward routes each output gradient to the input position that
// produced the max, as recorded in argmax by MaxPool2D.
func MaxPool2DBackward(gradOut *Tensor, argmax []int32, inShape []int) *Tensor {
	n, c := inShape[0], inShape[1]
	h, w := inShape[2], inShape[3]
	_, _, oh, ow := dims4("MaxPool2DBackward gradOut", gradOut)
	gradIn := New(n, c, h, w)
	parallel.Map(n*c, 0, func(p int) {
		gsrc := gradOut.data[p*oh*ow : (p+1)*oh*ow]
		arg := argmax[p*oh*ow : (p+1)*oh*ow]
		gdst := gradIn.data[p*h*w : (p+1)*h*w]
		for i, g := range gsrc {
			gdst[arg[i]] += g
		}
	})
	return gradIn
}

// GlobalAvgPool2D averages each (H, W) plane of an (N, C, H, W) tensor,
// returning (N, C). This is ResNet's terminal adaptive average pooling with
// output size 1×1.
func GlobalAvgPool2D(input *Tensor) *Tensor {
	n, c, h, w := dims4("GlobalAvgPool2D input", input)
	out := New(n, c)
	inv := 1.0 / float64(h*w)
	forEach(n*c, func(lo, hi int) {
		for p := lo; p < hi; p++ {
			plane := input.data[p*h*w : (p+1)*h*w]
			s := 0.0
			for _, v := range plane {
				s += float64(v)
			}
			out.data[p] = float32(s * inv)
		}
	})
	return out
}

// GlobalAvgPool2DBackward spreads each (N, C) gradient uniformly over the
// corresponding H×W plane.
func GlobalAvgPool2DBackward(gradOut *Tensor, inShape []int) *Tensor {
	n, c, h, w := inShape[0], inShape[1], inShape[2], inShape[3]
	if gradOut.NDim() != 2 || gradOut.shape[0] != n || gradOut.shape[1] != c {
		panic(fmt.Sprintf("tensor: GlobalAvgPool2DBackward gradOut shape %v, want [%d %d]", gradOut.shape, n, c))
	}
	gradIn := New(n, c, h, w)
	inv := float32(1.0 / float64(h*w))
	forEach(n*c, func(lo, hi int) {
		for p := lo; p < hi; p++ {
			g := gradOut.data[p] * inv
			plane := gradIn.data[p*h*w : (p+1)*h*w]
			for i := range plane {
				plane[i] = g
			}
		}
	})
	return gradIn
}

// AvgPool2D applies average pooling (count includes padding positions, the
// count_include_pad=false convention: only valid taps are averaged).
func AvgPool2D(input *Tensor, kernel, stride, pad int) *Tensor {
	n, c, h, w := dims4("AvgPool2D input", input)
	oh := ConvOut(h, kernel, stride, pad)
	ow := ConvOut(w, kernel, stride, pad)
	if oh <= 0 || ow <= 0 {
		panic(fmt.Sprintf("tensor: AvgPool2D produces empty output for input %dx%d k=%d s=%d p=%d", h, w, kernel, stride, pad))
	}
	out := New(n, c, oh, ow)
	parallel.Map(n*c, 0, func(p int) {
		plane := input.data[p*h*w : (p+1)*h*w]
		dst := out.data[p*oh*ow : (p+1)*oh*ow]
		i := 0
		for oy := 0; oy < oh; oy++ {
			for ox := 0; ox < ow; ox++ {
				sum := float32(0)
				cnt := 0
				for ky := 0; ky < kernel; ky++ {
					sy := oy*stride - pad + ky
					if sy < 0 || sy >= h {
						continue
					}
					for kx := 0; kx < kernel; kx++ {
						sx := ox*stride - pad + kx
						if sx < 0 || sx >= w {
							continue
						}
						sum += plane[sy*w+sx]
						cnt++
					}
				}
				if cnt > 0 {
					dst[i] = sum / float32(cnt)
				}
				i++
			}
		}
	})
	return out
}
