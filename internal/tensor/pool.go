package tensor

import (
	"fmt"

	"drainnas/internal/parallel"
)

// MaxPool2D applies max pooling over (N, C, H, W) input and returns the
// pooled output together with the flat argmax index (into the per-plane H*W
// space) of each output element, which the backward pass needs.
func MaxPool2D(input *Tensor, kernel, stride, pad int) (*Tensor, []int32) {
	n, c, h, w := dims4("MaxPool2D input", input)
	oh := ConvOut(h, kernel, stride, pad)
	ow := ConvOut(w, kernel, stride, pad)
	if oh <= 0 || ow <= 0 {
		panic(fmt.Sprintf("tensor: MaxPool2D produces empty output for input %dx%d k=%d s=%d p=%d", h, w, kernel, stride, pad))
	}
	out := New(n, c, oh, ow)
	argmax := make([]int32, n*c*oh*ow)
	parallel.Map(n*c, 0, func(p int) {
		plane := input.data[p*h*w : (p+1)*h*w]
		dst := out.data[p*oh*ow : (p+1)*oh*ow]
		arg := argmax[p*oh*ow : (p+1)*oh*ow]
		i := 0
		for oy := 0; oy < oh; oy++ {
			for ox := 0; ox < ow; ox++ {
				best := float32(0)
				bestIdx := int32(-1)
				for ky := 0; ky < kernel; ky++ {
					sy := oy*stride - pad + ky
					if sy < 0 || sy >= h {
						continue
					}
					for kx := 0; kx < kernel; kx++ {
						sx := ox*stride - pad + kx
						if sx < 0 || sx >= w {
							continue
						}
						v := plane[sy*w+sx]
						if bestIdx < 0 || v > best {
							best = v
							bestIdx = int32(sy*w + sx)
						}
					}
				}
				// A window fully inside padding (possible only with extreme
				// parameters) contributes zero.
				if bestIdx < 0 {
					best = 0
					bestIdx = 0
				}
				dst[i] = best
				arg[i] = bestIdx
				i++
			}
		}
	})
	return out, argmax
}

// MaxPool2DInto is the inference-path variant of MaxPool2D: it pools into a
// caller-provided (N, C, OH, OW) output and skips the argmax bookkeeping
// only the backward pass needs, so a steady-state forward allocates nothing.
func MaxPool2DInto(out, input *Tensor, kernel, stride, pad int) {
	n, c, h, w := dims4("MaxPool2DInto input", input)
	on, ocn, oh, ow := dims4("MaxPool2DInto out", out)
	eh := ConvOut(h, kernel, stride, pad)
	ew := ConvOut(w, kernel, stride, pad)
	if eh <= 0 || ew <= 0 {
		panic(fmt.Sprintf("tensor: MaxPool2DInto produces empty output for input %dx%d k=%d s=%d p=%d", h, w, kernel, stride, pad))
	}
	if on != n || ocn != c || oh != eh || ow != ew {
		panic(fmt.Sprintf("tensor: MaxPool2DInto out shape %v, want [%d %d %d %d]", out.shape, n, c, eh, ew))
	}
	// As in convInto: the serial case calls the plane body directly instead
	// of building a closure for parallel.Map, keeping the steady-state
	// compiled-inference forward allocation-free.
	job := maxPoolJob{out: out, input: input, kernel: kernel, stride: stride, pad: pad, h: h, w: w, oh: oh, ow: ow}
	if parallel.DefaultWorkers == 1 || n*c == 1 {
		for p := 0; p < n*c; p++ {
			job.run(p)
		}
	} else {
		pjob := job
		parallel.Map(n*c, 0, pjob.run)
	}
}

// maxPoolJob carries MaxPool2DInto's per-plane state so the hot loop can be
// a method rather than a closure (closures handed to parallel.Map always
// heap-allocate; a method value only escapes on the parallel branch).
type maxPoolJob struct {
	out, input          *Tensor
	kernel, stride, pad int
	h, w, oh, ow        int
}

func (j *maxPoolJob) run(p int) {
	h, w, oh, ow := j.h, j.w, j.oh, j.ow
	plane := j.input.data[p*h*w : (p+1)*h*w]
	dst := j.out.data[p*oh*ow : (p+1)*oh*ow]
	i := 0
	for oy := 0; oy < oh; oy++ {
		for ox := 0; ox < ow; ox++ {
			best := float32(0)
			found := false
			for ky := 0; ky < j.kernel; ky++ {
				sy := oy*j.stride - j.pad + ky
				if sy < 0 || sy >= h {
					continue
				}
				for kx := 0; kx < j.kernel; kx++ {
					sx := ox*j.stride - j.pad + kx
					if sx < 0 || sx >= w {
						continue
					}
					if v := plane[sy*w+sx]; !found || v > best {
						best = v
						found = true
					}
				}
			}
			dst[i] = best
			i++
		}
	}
}

// MaxPool2DBackward routes each output gradient to the input position that
// produced the max, as recorded in argmax by MaxPool2D.
func MaxPool2DBackward(gradOut *Tensor, argmax []int32, inShape []int) *Tensor {
	n, c := inShape[0], inShape[1]
	h, w := inShape[2], inShape[3]
	_, _, oh, ow := dims4("MaxPool2DBackward gradOut", gradOut)
	gradIn := New(n, c, h, w)
	parallel.Map(n*c, 0, func(p int) {
		gsrc := gradOut.data[p*oh*ow : (p+1)*oh*ow]
		arg := argmax[p*oh*ow : (p+1)*oh*ow]
		gdst := gradIn.data[p*h*w : (p+1)*h*w]
		for i, g := range gsrc {
			gdst[arg[i]] += g
		}
	})
	return gradIn
}

// GlobalAvgPool2D averages each (H, W) plane of an (N, C, H, W) tensor,
// returning (N, C). This is ResNet's terminal adaptive average pooling with
// output size 1×1.
func GlobalAvgPool2D(input *Tensor) *Tensor {
	n, c, h, w := dims4("GlobalAvgPool2D input", input)
	out := New(n, c)
	inv := 1.0 / float64(h*w)
	forEach(n*c, func(lo, hi int) {
		for p := lo; p < hi; p++ {
			plane := input.data[p*h*w : (p+1)*h*w]
			s := 0.0
			for _, v := range plane {
				s += float64(v)
			}
			out.data[p] = float32(s * inv)
		}
	})
	return out
}

// GlobalAvgPool2DInto averages each (H, W) plane of input into the
// caller-provided (N, C) output — the allocation-free variant of
// GlobalAvgPool2D for compiled inference plans.
func GlobalAvgPool2DInto(out, input *Tensor) {
	n, c, h, w := dims4("GlobalAvgPool2DInto input", input)
	if out.NDim() != 2 || out.shape[0] != n || out.shape[1] != c {
		panic(fmt.Sprintf("tensor: GlobalAvgPool2DInto out shape %v, want [%d %d]", out.shape, n, c))
	}
	inv := 1.0 / float64(h*w)
	if nc := n * c; serialRange(nc) {
		globalAvgRange(out.data, input.data, h*w, inv, 0, nc)
	} else {
		forEach(nc, func(lo, hi int) { globalAvgRange(out.data, input.data, h*w, inv, lo, hi) })
	}
}

func globalAvgRange(dst, src []float32, planeSize int, inv float64, lo, hi int) {
	for p := lo; p < hi; p++ {
		plane := src[p*planeSize : (p+1)*planeSize]
		s := 0.0
		for _, v := range plane {
			s += float64(v)
		}
		dst[p] = float32(s * inv)
	}
}

// GlobalAvgPool2DBackward spreads each (N, C) gradient uniformly over the
// corresponding H×W plane.
func GlobalAvgPool2DBackward(gradOut *Tensor, inShape []int) *Tensor {
	n, c, h, w := inShape[0], inShape[1], inShape[2], inShape[3]
	if gradOut.NDim() != 2 || gradOut.shape[0] != n || gradOut.shape[1] != c {
		panic(fmt.Sprintf("tensor: GlobalAvgPool2DBackward gradOut shape %v, want [%d %d]", gradOut.shape, n, c))
	}
	gradIn := New(n, c, h, w)
	inv := float32(1.0 / float64(h*w))
	forEach(n*c, func(lo, hi int) {
		for p := lo; p < hi; p++ {
			g := gradOut.data[p] * inv
			plane := gradIn.data[p*h*w : (p+1)*h*w]
			for i := range plane {
				plane[i] = g
			}
		}
	})
	return gradIn
}

// AvgPool2D applies average pooling (count includes padding positions, the
// count_include_pad=false convention: only valid taps are averaged).
func AvgPool2D(input *Tensor, kernel, stride, pad int) *Tensor {
	n, c, h, w := dims4("AvgPool2D input", input)
	oh := ConvOut(h, kernel, stride, pad)
	ow := ConvOut(w, kernel, stride, pad)
	if oh <= 0 || ow <= 0 {
		panic(fmt.Sprintf("tensor: AvgPool2D produces empty output for input %dx%d k=%d s=%d p=%d", h, w, kernel, stride, pad))
	}
	out := New(n, c, oh, ow)
	parallel.Map(n*c, 0, func(p int) {
		plane := input.data[p*h*w : (p+1)*h*w]
		dst := out.data[p*oh*ow : (p+1)*oh*ow]
		i := 0
		for oy := 0; oy < oh; oy++ {
			for ox := 0; ox < ow; ox++ {
				sum := float32(0)
				cnt := 0
				for ky := 0; ky < kernel; ky++ {
					sy := oy*stride - pad + ky
					if sy < 0 || sy >= h {
						continue
					}
					for kx := 0; kx < kernel; kx++ {
						sx := ox*stride - pad + kx
						if sx < 0 || sx >= w {
							continue
						}
						sum += plane[sy*w+sx]
						cnt++
					}
				}
				if cnt > 0 {
					dst[i] = sum / float32(cnt)
				}
				i++
			}
		}
	})
	return out
}
